"""The fabric manager (paper §3.1).

A logically centralized process on the control network that keeps *soft
state* only — everything it knows was learned from the switches and can
be relearned after a restart:

* the IP → PMAC registry that answers proxy-ARP queries,
* pod-number assignment for LDP,
* the topology view (from neighbour reports) and the fault matrix (from
  link fail/recover reports), from which it computes prescriptive
  per-switch forwarding overrides,
* multicast group membership and trees,
* VM-migration bookkeeping (invalidating stale PMACs at the old edge).

The node is a single-server queue: each message costs
``fm_service_time_s`` of CPU before its handler runs. Its utilization
and message/byte counters feed Figs. 14 and 15 directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.ethernet import ETHERTYPE_FABRIC, EthernetFrame
from repro.net.link import Port
from repro.net.node import Node
from repro.portland.config import PortlandConfig
from repro.portland.faults import compute_overrides, diff_overrides
from repro.portland.messages import (
    ArpFlood,
    ArpQuery,
    ArpResponse,
    BroadcastRelay,
    DisableLink,
    EnableLink,
    FaultClear,
    FaultUpdate,
    FmMessage,
    GratuitousArp,
    IgmpRelay,
    Invalidate,
    LinkFail,
    LinkRecover,
    McastInstall,
    McastMiss,
    McastRemove,
    NeighborReport,
    PodReply,
    PodRequest,
    RegisterHost,
    SwitchLevel,
    decode_fabric,
)
from repro.portland.multicast import MulticastManager
from repro.portland.topology_view import FabricView, SwitchRecord
from repro.sim.simulator import Simulator
from repro.switching.stp import bridge_mac_for


@dataclass
class FmHostRecord:
    """One host's binding in the fabric manager's registry."""

    ip: IPv4Address
    amac: MacAddress
    pmac: MacAddress
    edge_id: int
    port: int


class FabricManager(Node):
    """The PortLand fabric manager node."""

    def __init__(self, sim: Simulator, config: PortlandConfig,
                 name: str = "fabric-manager", scheme=None) -> None:
        super().__init__(sim, name, num_ports=0)
        self.config = config
        #: Topology scheme supplying the override policy (None = the
        #: built-in fat-tree computation in :mod:`repro.portland.faults`).
        self.scheme = scheme
        self.mac = bridge_mac_for(name)

        # Connectivity: switch id <-> FM port.
        self._port_by_switch: dict[int, Port] = {}

        # Registries.
        self.hosts_by_ip: dict[IPv4Address, FmHostRecord] = {}
        self.switches: dict[int, SwitchRecord] = {}
        self.fault_matrix: set[frozenset[int]] = set()
        self._pod_assignments: dict[int, int] = {}
        self._next_pod = 0
        self._sent_overrides: dict[int, dict[tuple[int, int], set[int]]] = {}

        self.multicast = MulticastManager(self._mcast_install,
                                          self._mcast_remove)

        # Single-server processing queue.
        self._queue: deque[tuple[EthernetFrame, Port]] = deque()
        self._busy = False

        #: Times this instance has been restarted (soft-state rebuilds).
        self.restarts = 0

        # Measurement counters (Figs. 14/15).
        self.messages_received = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.arp_queries = 0
        self.arp_misses = 0
        self.busy_time = 0.0
        #: Prescriptive override traffic (per-switch cache invalidation
        #: pressure: every update/clear flushes that switch's decisions).
        self.override_updates_sent = 0
        self.override_clears_sent = 0

    # ------------------------------------------------------------------
    # Control-network attachment

    def attach_switch(self, switch_id: int) -> Port:
        """Allocate an FM-side port for one switch's control link."""
        port = self.add_port()
        self._port_by_switch[switch_id] = port
        return port

    def view(self) -> FabricView:
        """Current topology view (switch records + fault matrix)."""
        return FabricView(self.switches, self.fault_matrix)

    def restart(self) -> None:
        """Simulate a fabric-manager crash + failover.

        All registries are dropped — the paper's design point is that the
        fabric manager holds *soft state only*, so a fresh instance
        rebuilds everything from the agents' periodic refreshes
        (``PortlandConfig.soft_state_refresh_s``) without any fabric
        reconfiguration. Pending queued messages are lost too.
        """
        self.restarts += 1
        self.hosts_by_ip.clear()
        self.switches.clear()
        self.fault_matrix.clear()
        self._sent_overrides = {}
        self.multicast.groups.clear()
        self._queue.clear()
        self._busy = False
        # Keep _pod_assignments and _next_pod monotone across restarts:
        # pod numbers live in the switches; reusing one for a *new* pod
        # would collide with PMACs already in use. Neighbor reports
        # re-teach us the assignments that exist.
        self.sim.trace.emit(self.sim.now, "fm.restart", self.name,
                            count=self.restarts)

    def _note_pod_in_use(self, pod: int) -> None:
        if pod != 0xFFFF:
            self._next_pod = max(self._next_pod, pod + 1)

    # ------------------------------------------------------------------
    # Receive / service queue

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        self.messages_received += 1
        self.bytes_received += frame.wire_length()
        self._queue.append((frame, in_port))
        if not self._busy:
            self._busy = True
            self._schedule_service()

    def _schedule_service(self) -> None:
        self.busy_time += self.config.fm_service_time_s
        self.sim.schedule(self.config.fm_service_time_s, self._service_one)

    def _service_one(self) -> None:
        if not self._queue:
            self._busy = False
            return
        frame, in_port = self._queue.popleft()
        try:
            payload = frame.payload
            if isinstance(payload, (bytes, bytearray)):
                message = decode_fabric(bytes(payload))
            else:
                message = payload
            self._dispatch(message)
        finally:
            if self._queue:
                self._schedule_service()
            else:
                self._busy = False

    def utilization(self, elapsed: float) -> float:
        """Fraction of one core consumed over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    # ------------------------------------------------------------------
    # Dispatch

    def _dispatch(self, message: FmMessage) -> None:
        if isinstance(message, ArpQuery):
            self._on_arp_query(message)
        elif isinstance(message, RegisterHost):
            self._on_register_host(message)
        elif isinstance(message, PodRequest):
            self._on_pod_request(message)
        elif isinstance(message, NeighborReport):
            self._on_neighbor_report(message)
        elif isinstance(message, LinkFail):
            self._on_link_change(message.reporter_id, message.neighbor_id,
                                 failed=True)
        elif isinstance(message, LinkRecover):
            self._on_link_change(message.reporter_id, message.neighbor_id,
                                 failed=False)
        elif isinstance(message, IgmpRelay):
            self.multicast.on_membership(self.view(), message.edge_id,
                                         message.port, message.group,
                                         message.join, message.host_ip)
        elif isinstance(message, McastMiss):
            self.multicast.on_sender(self.view(), message.edge_id,
                                     message.group)
        elif isinstance(message, BroadcastRelay):
            self._on_broadcast_relay(message)

    def send_to_switch(self, switch_id: int, message: FmMessage) -> None:
        """Ship one message to a switch over its control link."""
        port = self._port_by_switch.get(switch_id)
        if port is None:
            return
        frame = EthernetFrame(MacAddress(switch_id), self.mac,
                              ETHERTYPE_FABRIC, message)
        self.messages_sent += 1
        self.bytes_sent += frame.wire_length()
        port.send(frame)

    # ------------------------------------------------------------------
    # ARP service

    def _on_arp_query(self, query: ArpQuery) -> None:
        self.arp_queries += 1
        record = self.hosts_by_ip.get(query.target_ip)
        if record is not None:
            self.send_to_switch(query.edge_id, ArpResponse(
                query.request_id, query.target_ip, record.pmac, True))
            return
        # Unknown IP: fall back to a fabric-wide (edge-mediated) flood.
        self.arp_misses += 1
        self.send_to_switch(query.edge_id, ArpResponse(
            query.request_id, query.target_ip, MacAddress(0), False))
        flood = ArpFlood(query.target_ip, query.requester_ip,
                         query.requester_pmac)
        for switch_id, record_sw in self.switches.items():
            if record_sw.level is SwitchLevel.EDGE:
                self.send_to_switch(switch_id, flood)

    def _on_broadcast_relay(self, relay: BroadcastRelay) -> None:
        """Fan a tunnelled broadcast out to every other edge switch."""
        for switch_id, record in self.switches.items():
            if (record.level is SwitchLevel.EDGE
                    and switch_id != relay.edge_id):
                self.send_to_switch(switch_id, relay)

    # ------------------------------------------------------------------
    # Host registry / migration

    def _on_register_host(self, reg: RegisterHost) -> None:
        existing = self.hosts_by_ip.get(reg.ip)
        record = FmHostRecord(reg.ip, reg.amac, reg.pmac, reg.edge_id, reg.port)
        self.hosts_by_ip[reg.ip] = record
        if existing is None:
            return
        moved = (existing.edge_id != reg.edge_id
                 or existing.pmac != reg.pmac)
        if not moved:
            return
        # VM migration: invalidate the old location.
        self.sim.trace.emit(self.sim.now, "fm.migration", self.name,
                            ip=str(reg.ip), old=str(existing.pmac),
                            new=str(reg.pmac))
        self.send_to_switch(existing.edge_id,
                            Invalidate(reg.ip, existing.pmac, reg.pmac))
        if self.config.proactive_garp:
            announcement = GratuitousArp(reg.ip, reg.pmac)
            for switch_id, sw in self.switches.items():
                if sw.level is SwitchLevel.EDGE and switch_id != reg.edge_id:
                    self.send_to_switch(switch_id, announcement)

    # ------------------------------------------------------------------
    # LDP support

    def _on_pod_request(self, request: PodRequest) -> None:
        pod = self._pod_assignments.get(request.switch_id)
        if pod is None:
            pod = self._next_pod
            self._next_pod += 1
            self._pod_assignments[request.switch_id] = pod
        self.send_to_switch(request.switch_id, PodReply(pod))

    def _on_neighbor_report(self, report: NeighborReport) -> None:
        record = self.switches.setdefault(report.switch_id,
                                          SwitchRecord(report.switch_id))
        changed = record.update_from_report(report.level, report.pod,
                                            report.position, report.neighbors)
        self._note_pod_in_use(report.pod)
        if changed:
            # The physical view shifted under the overrides: LDP prunes
            # long-dead links from reports and re-adds them after
            # recovery, and positions can be re-arbitrated. A recompute
            # keyed only to fault-matrix events would leave overrides
            # derived from the stale wiring installed forever (e.g. an
            # ECMP branch still forbidden after its path came back).
            view = self.view()
            self._push_override_changes(view)
            self.multicast.on_topology_change(view)

    # ------------------------------------------------------------------
    # Fault handling

    def _on_link_change(self, a: int, b: int, failed: bool) -> None:
        link = frozenset((a, b))
        if failed:
            if link in self.fault_matrix:
                return
            self.fault_matrix.add(link)
        else:
            if link not in self.fault_matrix:
                return
            self.fault_matrix.discard(link)
        self.sim.trace.emit(self.sim.now, "fm.fault_matrix", self.name,
                            link=sorted(link), failed=failed,
                            total=len(self.fault_matrix))
        # Tell both endpoints to stop/resume using the link. The reporter
        # already knows; the *other* endpoint may not — under a
        # unidirectional failure its receive direction still works, so
        # its own keepalives never time out.
        for endpoint, other in ((a, b), (b, a)):
            message = DisableLink(other) if failed else EnableLink(other)
            self.send_to_switch(endpoint, message)
        view = self.view()
        self._push_override_changes(view)
        self.multicast.on_topology_change(view)

    def _push_override_changes(self, view: FabricView) -> None:
        if self.scheme is not None:
            new = self.scheme.compute_overrides(view)
        else:
            new = compute_overrides(view)
        updates, clears = diff_overrides(self._sent_overrides, new)
        for switch_id, (value, bits), avoid in updates:
            self.send_to_switch(switch_id,
                                FaultUpdate(MacAddress(value), bits, avoid))
        for switch_id, (value, bits) in clears:
            self.send_to_switch(switch_id, FaultClear(MacAddress(value), bits))
        self.override_updates_sent += len(updates)
        self.override_clears_sent += len(clears)
        if (updates or clears) and self.sim.trace.wants("fm.overrides"):
            self.sim.trace.emit(self.sim.now, "fm.overrides", self.name,
                                updates=len(updates), clears=len(clears),
                                switches=len({s for s, *_ in updates}
                                             | {s for s, _ in clears}))
        self._sent_overrides = new

    # ------------------------------------------------------------------
    # Multicast plumbing

    def _mcast_install(self, switch_id: int, group: IPv4Address,
                       ports: tuple[int, ...]) -> None:
        self.send_to_switch(switch_id,
                            McastInstall(group.multicast_mac(), ports))

    def _mcast_remove(self, switch_id: int, group: IPv4Address) -> None:
        self.send_to_switch(switch_id, McastRemove(group.multicast_mac()))
