"""The fabric manager (paper §3.1).

A logically centralized process on the control network that keeps *soft
state* only — everything it knows was learned from the switches and can
be relearned after a restart:

* the IP → PMAC registry that answers proxy-ARP queries,
* pod-number assignment for LDP,
* the topology view (from neighbour reports) and the fault matrix (from
  link fail/recover reports), from which it computes prescriptive
  per-switch forwarding overrides,
* multicast group membership and trees,
* VM-migration bookkeeping (invalidating stale PMACs at the old edge).

The node is a single-server queue: each message costs
``fm_service_time_s`` of CPU before its handler runs. Its utilization
and message/byte counters feed Figs. 14 and 15 directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.ethernet import ETHERTYPE_FABRIC, EthernetFrame
from repro.net.link import Port
from repro.net.node import Node
from repro.portland.config import PortlandConfig
from repro.portland.faults import (
    OverrideComputer,
    compute_overrides,
    diff_overrides,
)
from repro.portland.messages import (
    ArpFlood,
    ArpQuery,
    ArpResponse,
    BroadcastRelay,
    DisableLink,
    EnableLink,
    FaultClear,
    FaultUpdate,
    FmMessage,
    GratuitousArp,
    IgmpRelay,
    Invalidate,
    LinkFail,
    LinkRecover,
    McastInstall,
    McastMiss,
    McastRemove,
    NeighborReport,
    OverrideReport,
    PodReply,
    PodRequest,
    PolicyInstall,
    PolicyRevoke,
    RegisterHost,
    SwitchLevel,
    decode_fabric,
)
from repro.portland.multicast import MulticastManager
from repro.policy import PolicyRule, PolicyTable
from repro.portland.topology_view import FabricView, SwitchRecord
from repro.sim.process import Timer
from repro.sim.simulator import Simulator
from repro.switching.stp import bridge_mac_for


@dataclass
class FmHostRecord:
    """One host's binding in the fabric manager's registry."""

    ip: IPv4Address
    amac: MacAddress
    pmac: MacAddress
    edge_id: int
    port: int


class FabricManager(Node):
    """The PortLand fabric manager node."""

    def __init__(self, sim: Simulator, config: PortlandConfig,
                 name: str = "fabric-manager", scheme=None) -> None:
        super().__init__(sim, name, num_ports=0)
        self.config = config
        #: Topology scheme supplying the override policy (None = the
        #: built-in fat-tree computation in :mod:`repro.portland.faults`).
        self.scheme = scheme
        self.mac = bridge_mac_for(name)

        # Connectivity: switch id <-> FM port.
        self._port_by_switch: dict[int, Port] = {}

        # Registries.
        self.hosts_by_ip: dict[IPv4Address, FmHostRecord] = {}
        self.switches: dict[int, SwitchRecord] = {}
        self.fault_matrix: set[frozenset[int]] = set()
        self._pod_assignments: dict[int, int] = {}
        self._next_pod = 0
        self._sent_overrides: dict[int, dict[tuple[int, int], set[int]]] = {}

        self.multicast = MulticastManager(self._mcast_install,
                                          self._mcast_remove)

        #: ACL policy (operator intent, NOT soft state: it survives
        #: :meth:`restart` and is re-materialised at the edges as hosts
        #: re-register through the soft-state refresh).
        self.policy = PolicyTable()

        # Single-server processing queue. Items are (frame-or-message,
        # in_port): cluster-internal messages enqueue without a frame but
        # cost the same service time.
        self._queue: deque[tuple[EthernetFrame | FmMessage, Port | None]] = \
            deque()
        self._busy = False
        #: Bumped by :meth:`restart` so a ``_service_one`` event scheduled
        #: by the pre-restart instance cannot service the new queue (it
        #: would run concurrently with the chain the first post-restart
        #: message starts, double-charging ``busy_time``).
        self._service_epoch = 0

        # Override push machinery: an optional per-round batching timer
        # (``fm_batch_interval_s``) and an optional incremental
        # recomputation state (``fm_incremental``).
        self._batch_timer = Timer(sim, self._flush_override_batch)
        self._pending_links: set[frozenset[int]] = set()
        self._pending_switches: set[int] = set()
        self._pending_full = False
        self._computer = OverrideComputer()

        #: Times this instance has been restarted (soft-state rebuilds).
        self.restarts = 0

        # Measurement counters (Figs. 14/15).
        self.messages_received = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.arp_queries = 0
        self.arp_misses = 0
        self.busy_time = 0.0
        #: Prescriptive override traffic (per-switch cache invalidation
        #: pressure: every update/clear flushes that switch's decisions).
        self.override_updates_sent = 0
        self.override_clears_sent = 0
        #: Recompute-work accounting: rounds of recompute+diff, batching
        #: rounds coalesced by the timer, and destination-edge prefixes
        #: examined (full recompute scans every edge; the incremental
        #: path re-derives only affected ones — the fig. 15 metric).
        self.override_recomputes = 0
        self.override_batches = 0
        self.override_edges_examined = 0

    # ------------------------------------------------------------------
    # Control-network attachment

    def attach_switch(self, switch_id: int, name: str | None = None) -> Port:
        """Allocate an FM-side port for one switch's control link.

        ``name`` is a placement hint for sharded deployments (see
        :mod:`repro.portland.fm_shard`); the single FM ignores it.
        """
        port = self.add_port()
        self._port_by_switch[switch_id] = port
        return port

    def mac_for(self, switch_id: int) -> MacAddress:
        """The FM MAC ``switch_id``'s agent should address (sharded
        clusters return the switch's home shard)."""
        return self.mac

    def view(self) -> FabricView:
        """Current topology view (switch records + fault matrix)."""
        return FabricView(self.switches, self.fault_matrix)

    def restart(self) -> None:
        """Simulate a fabric-manager crash + failover.

        All registries are dropped — the paper's design point is that the
        fabric manager holds *soft state only*, so a fresh instance
        rebuilds everything from the agents' periodic refreshes
        (``PortlandConfig.soft_state_refresh_s``) without any fabric
        reconfiguration. Pending queued messages are lost too.
        """
        self.restarts += 1
        self.hosts_by_ip.clear()
        self.switches.clear()
        self.fault_matrix.clear()
        self._sent_overrides = {}
        self.multicast.groups.clear()
        self._queue.clear()
        self._busy = False
        # Invalidate any in-flight _service_one event: it belongs to the
        # crashed instance and must not start servicing the new queue.
        self._service_epoch += 1
        # Pending batched pushes die with the instance too.
        self._batch_timer.stop()
        self._pending_links = set()
        self._pending_switches = set()
        self._pending_full = False
        self._computer.reset()
        # Keep _pod_assignments and _next_pod monotone across restarts:
        # pod numbers live in the switches; reusing one for a *new* pod
        # would collide with PMACs already in use. Neighbor reports
        # re-teach us the assignments that exist.
        self.sim.trace.emit(self.sim.now, "fm.restart", self.name,
                            count=self.restarts)

    def _note_pod_in_use(self, pod: int) -> None:
        if pod != 0xFFFF:
            self._next_pod = max(self._next_pod, pod + 1)

    # ------------------------------------------------------------------
    # Receive / service queue

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        self.messages_received += 1
        self.bytes_received += frame.wire_length()
        self._queue.append((frame, in_port))
        if not self._busy:
            self._busy = True
            self._schedule_service()

    def enqueue_internal(self, message: FmMessage) -> None:
        """Queue a message that arrived off the switch control links
        (inter-shard forwarding); it costs a normal service slot but is
        accounted separately from switch control traffic."""
        self._queue.append((message, None))
        if not self._busy:
            self._busy = True
            self._schedule_service()

    def _schedule_service(self) -> None:
        self.sim.schedule(self.config.fm_service_time_s, self._service_one,
                          self._service_epoch)

    def _service_one(self, epoch: int) -> None:
        if epoch != self._service_epoch:
            return  # scheduled before a restart: that chain is dead
        if not self._queue:
            self._busy = False
            return
        # CPU time is charged on completion, not at schedule time, so a
        # run (or a restart) that cuts a service short never counts it.
        self.busy_time += self.config.fm_service_time_s
        item, in_port = self._queue.popleft()
        try:
            if isinstance(item, EthernetFrame):
                payload = item.payload
                if isinstance(payload, (bytes, bytearray)):
                    message = decode_fabric(bytes(payload))
                else:
                    message = payload
            else:
                message = item
            self._dispatch(message)
        finally:
            if self._queue:
                self._schedule_service()
            else:
                self._busy = False

    def utilization(self, elapsed: float) -> float:
        """Fraction of one core consumed over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    # ------------------------------------------------------------------
    # Dispatch

    def _dispatch(self, message: FmMessage) -> None:
        if isinstance(message, ArpQuery):
            self._on_arp_query(message)
        elif isinstance(message, RegisterHost):
            self._on_register_host(message)
        elif isinstance(message, PodRequest):
            self._on_pod_request(message)
        elif isinstance(message, NeighborReport):
            self._on_neighbor_report(message)
        elif isinstance(message, LinkFail):
            self._on_link_change(message.reporter_id, message.neighbor_id,
                                 failed=True)
        elif isinstance(message, LinkRecover):
            self._on_link_change(message.reporter_id, message.neighbor_id,
                                 failed=False)
        elif isinstance(message, IgmpRelay):
            self.multicast.on_membership(self.view(), message.edge_id,
                                         message.port, message.group,
                                         message.join, message.host_ip)
        elif isinstance(message, McastMiss):
            self.multicast.on_sender(self.view(), message.edge_id,
                                     message.group)
        elif isinstance(message, BroadcastRelay):
            self._on_broadcast_relay(message)
        elif isinstance(message, OverrideReport):
            self._on_override_report(message)

    def send_to_switch(self, switch_id: int, message: FmMessage) -> None:
        """Ship one message to a switch over its control link."""
        port = self._port_by_switch.get(switch_id)
        if port is None:
            return
        frame = EthernetFrame(MacAddress(switch_id), self.mac,
                              ETHERTYPE_FABRIC, message)
        self.messages_sent += 1
        self.bytes_sent += frame.wire_length()
        port.send(frame)

    def _edge_switch_ids(self) -> list[int]:
        """Edge switches to fan floods/relays/announcements out to.

        Shards override this to read their replicated edge directory
        instead of ``self.switches`` (which only the coordinator fills)."""
        return [sid for sid, record in self.switches.items()
                if record.level is SwitchLevel.EDGE]

    # ------------------------------------------------------------------
    # ARP service

    def _on_arp_query(self, query: ArpQuery) -> None:
        self.arp_queries += 1
        record = self.hosts_by_ip.get(query.target_ip)
        if record is not None:
            self.send_to_switch(query.edge_id, ArpResponse(
                query.request_id, query.target_ip, record.pmac, True))
            return
        self._arp_miss(query)

    def _arp_miss(self, query: ArpQuery) -> None:
        """Unknown IP: fall back to a fabric-wide (edge-mediated) flood.

        The flood deliberately *includes* the querying edge: ARP
        requests are proxied, never flooded locally, so hosts sharing
        the requester's edge can only hear the request through this
        path. The edge suppresses the requester's own port (see
        ``PortlandAgent._handle_arp_flood``)."""
        self.arp_misses += 1
        self.send_to_switch(query.edge_id, ArpResponse(
            query.request_id, query.target_ip, MacAddress(0), False))
        flood = ArpFlood(query.target_ip, query.requester_ip,
                         query.requester_pmac)
        for switch_id in self._edge_switch_ids():
            self.send_to_switch(switch_id, flood)

    def _on_broadcast_relay(self, relay: BroadcastRelay) -> None:
        """Fan a tunnelled broadcast out to every other edge switch."""
        for switch_id in self._edge_switch_ids():
            if switch_id != relay.edge_id:
                self.send_to_switch(switch_id, relay)

    # ------------------------------------------------------------------
    # ACL policy

    def install_acl(self, src_ip, dst_ip) -> PolicyRule:
        """Block ``src_ip`` → ``dst_ip``: record the rule and materialise
        it at the source's edge switch (if both endpoints are known —
        otherwise the push happens when the missing endpoint registers).
        Idempotent."""
        rule = self.policy.add(src_ip, dst_ip)
        self.sim.trace.emit(self.sim.now, "fm.acl_install", self.name,
                            src=rule.src_ip, dst=rule.dst_ip)
        self._push_acl(rule)
        return rule

    def revoke_acl(self, src_ip, dst_ip) -> None:
        """Unblock the pair and remove its edge entry. Idempotent."""
        rule = self.policy.remove(src_ip, dst_ip)
        if rule is None:
            return
        self.sim.trace.emit(self.sim.now, "fm.acl_revoke", self.name,
                            src=rule.src_ip, dst=rule.dst_ip)
        src = self._policy_record(IPv4Address.parse(rule.src_ip))
        if src is not None:
            self.send_to_switch(src.edge_id, PolicyRevoke(
                IPv4Address.parse(rule.src_ip),
                IPv4Address.parse(rule.dst_ip)))

    def _policy_record(self, ip: IPv4Address) -> FmHostRecord | None:
        """Registry lookup for policy resolution (the sharded
        coordinator overrides this to consult the merged registry)."""
        return self.hosts_by_ip.get(ip)

    def _push_acl(self, rule: PolicyRule) -> None:
        src = self._policy_record(IPv4Address.parse(rule.src_ip))
        dst = self._policy_record(IPv4Address.parse(rule.dst_ip))
        if src is None or dst is None:
            return
        self.send_to_switch(src.edge_id, PolicyInstall(
            src.ip, dst.ip, dst.pmac, src.port))

    def _repush_policies(self, reg: RegisterHost,
                         existing: FmHostRecord | None) -> None:
        """Re-materialise every rule touching a (re-)registered host.

        Covers three distinct events with one hook: fresh registration
        (first chance to push a rule installed before the host was
        known), the soft-state refresh after an FM restart (the policy
        table survives, the push rides the re-registration), and VM
        migration (the source's entry moves edges; the destination's
        PMAC change rewrites the entry in place at the source's edge).
        """
        rules = self.policy.involving(reg.ip)
        if not rules:
            return
        if existing is not None and existing.edge_id != reg.edge_id:
            # The source moved: retract the stale (in_port, dst_pmac)
            # entry at the old edge before a future tenant of that port
            # can inherit it.
            for rule in rules:
                if rule.src_ip == str(reg.ip):
                    self.send_to_switch(existing.edge_id, PolicyRevoke(
                        IPv4Address.parse(rule.src_ip),
                        IPv4Address.parse(rule.dst_ip)))
        for rule in rules:
            self._push_acl(rule)

    # ------------------------------------------------------------------
    # Host registry / migration

    def _on_register_host(self, reg: RegisterHost) -> None:
        existing = self.hosts_by_ip.get(reg.ip)
        record = FmHostRecord(reg.ip, reg.amac, reg.pmac, reg.edge_id, reg.port)
        self.hosts_by_ip[reg.ip] = record
        if self.policy:
            self._repush_policies(reg, existing)
        if existing is None:
            return
        moved = (existing.edge_id != reg.edge_id
                 or existing.pmac != reg.pmac)
        if not moved:
            return
        # VM migration: invalidate the old location.
        self.sim.trace.emit(self.sim.now, "fm.migration", self.name,
                            ip=str(reg.ip), old=str(existing.pmac),
                            new=str(reg.pmac))
        self.send_to_switch(existing.edge_id,
                            Invalidate(reg.ip, existing.pmac, reg.pmac))
        if self.config.proactive_garp:
            announcement = GratuitousArp(reg.ip, reg.pmac)
            for switch_id in self._edge_switch_ids():
                if switch_id != reg.edge_id:
                    self.send_to_switch(switch_id, announcement)

    # ------------------------------------------------------------------
    # LDP support

    def _on_pod_request(self, request: PodRequest) -> None:
        pod = self._pod_assignments.get(request.switch_id)
        if pod is None:
            pod = self._next_pod
            self._next_pod += 1
            self._pod_assignments[request.switch_id] = pod
        self.send_to_switch(request.switch_id, PodReply(pod))

    def _on_neighbor_report(self, report: NeighborReport) -> None:
        record = self.switches.get(report.switch_id)
        is_new = record is None
        if is_new:
            record = SwitchRecord(report.switch_id)
            self.switches[report.switch_id] = record
        old_role = (record.level, record.pod, record.position)
        old_neighbors = {nbr for nbr, _lvl in record.neighbors.values()}
        changed = record.update_from_report(report.level, report.pod,
                                            report.position, report.neighbors)
        self._note_pod_in_use(report.pod)
        if not changed:
            return
        # The physical view shifted under the overrides: LDP prunes
        # long-dead links from reports and re-adds them after
        # recovery, and positions can be re-arbitrated. A recompute
        # keyed only to fault-matrix events would leave overrides
        # derived from the stale wiring installed forever (e.g. an
        # ECMP branch still forbidden after its path came back).
        if is_new or old_role != (record.level, record.pod, record.position):
            # Role changes re-shape prefixes themselves: full recompute.
            self._note_view_change()
            return
        new_neighbors = {nbr for nbr, _lvl in record.neighbors.values()}
        delta = {frozenset((report.switch_id, nbr))
                 for nbr in old_neighbors ^ new_neighbors}
        self._note_view_change(changed_links=delta,
                               changed_switches={report.switch_id})

    # ------------------------------------------------------------------
    # Fault handling

    def _on_link_change(self, a: int, b: int, failed: bool) -> None:
        link = frozenset((a, b))
        if failed:
            if link in self.fault_matrix:
                return
            self.fault_matrix.add(link)
        else:
            if link not in self.fault_matrix:
                return
            self.fault_matrix.discard(link)
        self.sim.trace.emit(self.sim.now, "fm.fault_matrix", self.name,
                            link=sorted(link), failed=failed,
                            total=len(self.fault_matrix))
        # Tell both endpoints to stop/resume using the link. The reporter
        # already knows; the *other* endpoint may not — under a
        # unidirectional failure its receive direction still works, so
        # its own keepalives never time out.
        for endpoint, other in ((a, b), (b, a)):
            message = DisableLink(other) if failed else EnableLink(other)
            self.send_to_switch(endpoint, message)
        self._note_view_change(changed_links={link})

    # ------------------------------------------------------------------
    # Override push: optional batching round + incremental recompute

    def _note_view_change(self,
                          changed_links: set[frozenset[int]] | None = None,
                          changed_switches: set[int] | None = None) -> None:
        """React to a view change: push overrides now, or fold the change
        into the current batching round.

        ``changed_links``/``changed_switches`` attribute the change for
        the incremental recompute; ``None`` means "recompute everything".
        Multicast trees always follow the view immediately — only the
        FaultUpdate/FaultClear stream is batched.
        """
        view = self.view()
        if self.config.fm_batch_interval_s > 0:
            if changed_links is None:
                self._pending_full = True
            elif not self._pending_full:
                self._pending_links |= changed_links
                if changed_switches:
                    self._pending_switches |= changed_switches
            if not self._batch_timer.armed:
                self._batch_timer.start(self.config.fm_batch_interval_s)
            self.multicast.on_topology_change(view)
            return
        self._push_override_changes(view, changed_links, changed_switches)
        self.multicast.on_topology_change(view)

    def _flush_override_batch(self) -> None:
        """End of a batching round: one recompute + one diff for every
        change that arrived during the window."""
        self.override_batches += 1
        if self._pending_full:
            changed_links = changed_switches = None
        else:
            changed_links = self._pending_links
            changed_switches = self._pending_switches
        self._pending_full = False
        self._pending_links = set()
        self._pending_switches = set()
        self._push_override_changes(self.view(), changed_links,
                                    changed_switches)

    def _push_override_changes(
            self, view: FabricView,
            changed_links: set[frozenset[int]] | None = None,
            changed_switches: set[int] | None = None) -> None:
        self.override_recomputes += 1
        if self.scheme is not None:
            new = self.scheme.compute_overrides(view)
            self.override_edges_examined += len(view.edges())
        elif self.config.fm_incremental:
            before = self._computer.edges_examined
            current = self._computer.update(view, changed_links,
                                            changed_switches)
            self.override_edges_examined += (self._computer.edges_examined
                                             - before)
            # Deep-copy: the computer mutates its map in place on the
            # next update, but _sent_overrides must stay a snapshot.
            new = {sid: {prefix: set(avoid)
                         for prefix, avoid in prefix_map.items()}
                   for sid, prefix_map in current.items()}
        else:
            new = compute_overrides(view)
            self.override_edges_examined += len(view.edges())
        updates, clears = diff_overrides(self._sent_overrides, new)
        for switch_id, (value, bits), avoid in updates:
            self.send_to_switch(switch_id,
                                FaultUpdate(MacAddress(value), bits, avoid))
        for switch_id, (value, bits) in clears:
            self.send_to_switch(switch_id, FaultClear(MacAddress(value), bits))
        self.override_updates_sent += len(updates)
        self.override_clears_sent += len(clears)
        if (updates or clears) and self.sim.trace.wants("fm.overrides"):
            self.sim.trace.emit(self.sim.now, "fm.overrides", self.name,
                                updates=len(updates), clears=len(clears),
                                switches=len({s for s, *_ in updates}
                                             | {s for s, _ in clears}))
        self._sent_overrides = new

    def _on_override_report(self, report: OverrideReport) -> None:
        """Reconcile a switch's held overrides against what we believe.

        Closes the restart hole: overrides are FM-originated state, so a
        restarted manager cannot know what agents still hold. If a fault
        cleared while the manager was down, nothing ever retracts the
        stale overrides — until this refresh-driven report arrives and
        the diff below sends the missing clears (and re-sends any
        updates the switch somehow lost).
        """
        sent = self._sent_overrides.get(report.switch_id, {})
        held = set(report.prefixes)
        updates = 0
        clears = 0
        for value, bits in sorted(held - set(sent)):
            self.send_to_switch(report.switch_id,
                                FaultClear(MacAddress(value), bits))
            clears += 1
        for value, bits in sorted(set(sent) - held):
            avoid = sent[(value, bits)]
            self.send_to_switch(report.switch_id, FaultUpdate(
                MacAddress(value), bits, tuple(sorted(avoid))))
            updates += 1
        self.override_updates_sent += updates
        self.override_clears_sent += clears
        if (updates or clears) and self.sim.trace.wants("fm.overrides"):
            self.sim.trace.emit(self.sim.now, "fm.overrides", self.name,
                                updates=updates, clears=clears, switches=1,
                                reconciled=True)

    # ------------------------------------------------------------------
    # Multicast plumbing

    def _mcast_install(self, switch_id: int, group: IPv4Address,
                       ports: tuple[int, ...]) -> None:
        self.send_to_switch(switch_id,
                            McastInstall(group.multicast_mac(), ports))

    def _mcast_remove(self, switch_id: int, group: IPv4Address) -> None:
        self.send_to_switch(switch_id, McastRemove(group.multicast_mac()))
