"""VM live-migration orchestration (paper §3.7, Fig. 13).

PortLand's promise is that a VM keeps its IP — and its open transport
connections — across a migration to any other physical machine in the
data center. The network-side sequence:

1. The VM detaches from its old edge switch (stop-and-copy downtime).
2. It attaches at the new edge and announces itself with a gratuitous
   ARP; the new edge switch discovers it, allocates a *new* PMAC, and
   registers it with the fabric manager.
3. The fabric manager notices the IP was previously registered
   elsewhere, updates its mapping, and sends an ``Invalidate`` to the
   old edge switch.
4. The old edge installs a trap: packets still addressed to the stale
   PMAC are forwarded to the new PMAC and answered with a unicast
   gratuitous ARP so each stale sender repoints its cache.

This module moves the *cable* in the simulator; everything else is the
protocol machinery reacting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.host.host import Host
from repro.net.link import Link
from repro.sim.simulator import Simulator
from repro.topology.builder import LinkParams, PortlandFabric


@dataclass
class MigrationEvents:
    """Timestamps of the migration milestones (for Fig.-13 analysis)."""

    started_at: float = -1.0
    attached_at: float = -1.0
    announced_at: float = -1.0


class VmMigration:
    """Orchestrates one VM migration inside a PortLand fabric."""

    def __init__(
        self,
        fabric: PortlandFabric,
        host_name: str,
        new_edge: str,
        new_port: int,
        downtime_s: float = 0.2,
        link_params: LinkParams | None = None,
    ) -> None:
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.host: Host = fabric.hosts[host_name]
        self.new_edge = new_edge
        self.new_port = new_port
        self.downtime_s = downtime_s
        self.params = link_params or LinkParams()
        self.events = MigrationEvents()
        self._validate()

    def _validate(self) -> None:
        switch = self.fabric.switches.get(self.new_edge)
        if switch is None:
            raise TopologyError(f"unknown edge switch {self.new_edge!r}")
        port = switch.port(self.new_port)
        if port.link is not None:
            raise TopologyError(
                f"{self.new_edge} port {self.new_port} is already wired")

    def start(self) -> None:
        """Begin the migration at the current simulated time."""
        self.events.started_at = self.sim.now
        old_link = self.host.nic.link
        if old_link is None:
            raise TopologyError(f"{self.host.name} is not attached anywhere")
        old_link.detach()
        self.sim.trace.emit(self.sim.now, "migration.detached", self.host.name,
                            downtime=self.downtime_s)
        self.sim.schedule(self.downtime_s, self._attach)

    def _attach(self) -> None:
        switch = self.fabric.switches[self.new_edge]
        Link(
            self.sim,
            self.host.nic,
            switch.port(self.new_port),
            rate_bps=self.params.rate_bps,
            delay_s=self.params.delay_s,
            queue_bytes=self.params.queue_bytes,
            carrier_detect=True,
        )
        self.events.attached_at = self.sim.now
        self.fabric.links[(self.host.name, self.new_edge)] = self.host.nic.link
        self.sim.trace.emit(self.sim.now, "migration.attached", self.host.name,
                            edge=self.new_edge, port=self.new_port)
        # The new edge adopts the silent port after its grace period;
        # announce just after so the gratuitous ARP is seen as a new host.
        agent = self.fabric.agents[self.new_edge]
        grace = (agent.config.edge_detect_periods
                 * agent.config.ldm_period_s) + 2 * agent.config.ldm_period_s
        self.sim.schedule(grace, self._announce)

    def _announce(self) -> None:
        self.events.announced_at = self.sim.now
        self.host.gratuitous_arp()
        self.sim.trace.emit(self.sim.now, "migration.announced", self.host.name)
