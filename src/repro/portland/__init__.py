"""PortLand: PMAC addressing, LDP, fabric manager, fault-tolerant routing.

This package is the paper's contribution. The usual entry point is
:func:`repro.topology.build_portland_fabric`, which wires a fat tree of
:class:`PortlandSwitch` + :class:`PortlandAgent` pairs to a
:class:`FabricManager` over a :class:`ControlNetwork`.
"""

from repro.portland.agent import HostRecord, PortlandAgent
from repro.portland.config import PortlandConfig
from repro.portland.control import ControlNetwork
from repro.portland.fabric_manager import FabricManager, FmHostRecord
from repro.portland.faults import compute_overrides, diff_overrides
from repro.portland.ldp import LdpProcess, NeighborInfo
from repro.portland.messages import SwitchLevel
from repro.portland.multicast import GroupState, MulticastManager
from repro.portland.pmac import Pmac, PmacAllocator, pod_prefix, position_prefix
from repro.portland.switch import PortlandSwitch
from repro.portland.topology_view import FabricView, SwitchRecord

__all__ = [
    "ControlNetwork",
    "FabricManager",
    "FabricView",
    "FmHostRecord",
    "GroupState",
    "HostRecord",
    "LdpProcess",
    "MulticastManager",
    "NeighborInfo",
    "Pmac",
    "PmacAllocator",
    "PortlandAgent",
    "PortlandConfig",
    "PortlandSwitch",
    "SwitchLevel",
    "SwitchRecord",
    "compute_overrides",
    "diff_overrides",
    "pod_prefix",
    "position_prefix",
]
