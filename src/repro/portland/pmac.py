"""Pseudo MAC (PMAC) addressing — PortLand's hierarchical host identity.

A PMAC is a 48-bit value structured as ``pod:16 . position:8 . port:8 .
vmid:16``: the pod of the host's edge switch, the switch's position
within the pod, the edge port the host hangs off, and a per-port virtual
machine id. Because the structure mirrors the topology, forwarding
reduces to longest-prefix matching on at most O(k) entries per switch —
the core of the paper's scalability argument.

End hosts never learn their own PMAC: edge switches rewrite
AMAC↔PMAC at the fabric boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.net.addresses import MacAddress

POD_BITS = 16
POSITION_BITS = 8
PORT_BITS = 8
VMID_BITS = 16

MAX_POD = (1 << POD_BITS) - 1
MAX_POSITION = (1 << POSITION_BITS) - 1
MAX_PORT = (1 << PORT_BITS) - 1
MAX_VMID = (1 << VMID_BITS) - 1

#: Prefix lengths (in bits) used by forwarding entries.
POD_PREFIX_LEN = POD_BITS
POSITION_PREFIX_LEN = POD_BITS + POSITION_BITS
PORT_PREFIX_LEN = POD_BITS + POSITION_BITS + PORT_BITS

#: The I/G (multicast) bit of an EUI-48 expressed within the pod field:
#: bit 40 of the MAC is bit 8 of the 16-bit pod. Pods that would set it
#: are rejected, since a multicast PMAC could never be forwarded unicast.
_POD_IG_BIT = 1 << 8

#: Bounded memo for :meth:`Pmac.from_mac` (cleared wholesale when full;
#: decoded values are immutable so staleness is impossible).
_DECODE_CACHE: dict[int, "Pmac"] = {}
_DECODE_CACHE_MAX = 1 << 16


@dataclass(frozen=True, order=True)
class Pmac:
    """A structured PMAC."""

    pod: int
    position: int
    port: int
    vmid: int

    def __post_init__(self) -> None:
        if not 0 <= self.pod <= MAX_POD:
            raise AddressError(f"pod out of range: {self.pod}")
        if self.pod & _POD_IG_BIT:
            raise AddressError(
                f"pod {self.pod} would set the Ethernet multicast bit"
            )
        if not 0 <= self.position <= MAX_POSITION:
            raise AddressError(f"position out of range: {self.position}")
        if not 0 <= self.port <= MAX_PORT:
            raise AddressError(f"port out of range: {self.port}")
        if not 0 <= self.vmid <= MAX_VMID:
            raise AddressError(f"vmid out of range: {self.vmid}")

    def to_mac(self) -> MacAddress:
        """Render as an Ethernet address (memoised on the instance)."""
        cached = self.__dict__.get("_mac")
        if cached is None:
            value = (
                (self.pod << (POSITION_BITS + PORT_BITS + VMID_BITS))
                | (self.position << (PORT_BITS + VMID_BITS))
                | (self.port << VMID_BITS)
                | self.vmid
            )
            cached = MacAddress(value)
            # The dataclass is frozen but not slotted, so an extra cache
            # attribute works; it never participates in eq/hash/order.
            object.__setattr__(self, "_mac", cached)
        return cached

    @classmethod
    def from_mac(cls, mac: MacAddress) -> "Pmac":
        """Parse an Ethernet address as a PMAC.

        Decodes are memoised by MAC value: a fabric re-decodes the same
        few thousand PMACs on every ARP proxy hit and forwarding-entry
        refresh, so the field extraction is paid once per address.
        """
        value = mac.value
        if cls is Pmac:
            cached = _DECODE_CACHE.get(value)
            if cached is not None:
                return cached
        pmac = cls(
            pod=(value >> (POSITION_BITS + PORT_BITS + VMID_BITS)) & MAX_POD,
            position=(value >> (PORT_BITS + VMID_BITS)) & MAX_POSITION,
            port=(value >> VMID_BITS) & MAX_PORT,
            vmid=value & MAX_VMID,
        )
        if cls is Pmac:
            if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[value] = pmac
        return pmac

    def __str__(self) -> str:
        return f"pmac({self.pod}.{self.position}.{self.port}.{self.vmid})"


def pod_prefix(pod: int) -> tuple[MacAddress, int]:
    """(value, prefix_len) matching every PMAC in ``pod``."""
    return (Pmac(pod, 0, 0, 0).to_mac(), POD_PREFIX_LEN)


def position_prefix(pod: int, position: int) -> tuple[MacAddress, int]:
    """(value, prefix_len) matching every PMAC at (pod, position)."""
    return (Pmac(pod, position, 0, 0).to_mac(), POSITION_PREFIX_LEN)


class PmacAllocator:
    """Per-edge-switch PMAC allocation: one vmid counter per host port.

    Frees vmids when hosts disappear so long-running fabrics with churn
    do not leak the 16-bit space.
    """

    def __init__(self, pod: int, position: int) -> None:
        self.pod = pod
        self.position = position
        self._next_vmid: dict[int, int] = {}
        self._free: dict[int, list[int]] = {}
        self._allocated: dict[int, set[int]] = {}

    def allocate(self, port: int) -> Pmac:
        """Allocate the next PMAC on edge ``port``."""
        free = self._free.get(port)
        if free:
            vmid = free.pop()
        else:
            vmid = self._next_vmid.get(port, 0)
            if vmid > MAX_VMID:
                raise AddressError(
                    f"vmid space exhausted on port {port} of "
                    f"pod {self.pod} position {self.position}"
                )
            self._next_vmid[port] = vmid + 1
        self._allocated.setdefault(port, set()).add(vmid)
        return Pmac(self.pod, self.position, port, vmid)

    def release(self, pmac: Pmac) -> None:
        """Return a PMAC's vmid to the pool."""
        if pmac.pod != self.pod or pmac.position != self.position:
            raise AddressError(f"{pmac} does not belong to this edge switch")
        allocated = self._allocated.get(pmac.port, set())
        if pmac.vmid in allocated:
            allocated.discard(pmac.vmid)
            self._free.setdefault(pmac.port, []).append(pmac.vmid)

    def allocated_count(self) -> int:
        """Number of live PMACs on this edge switch."""
        return sum(len(vmids) for vmids in self._allocated.values())
