"""Fault-matrix → prescriptive forwarding overrides (paper §3.6).

When a switch reports a failed link, the fabric manager does not flood
the event fabric-wide (the link-state approach it replaces); it computes
exactly which switches' forwarding decisions are invalidated and sends
each of them one :class:`~repro.portland.messages.FaultUpdate` naming
the destination prefix and the next-hop neighbours to avoid. Recovery
sends the matching clears.

The computation is a reachability analysis on the *alive* graph (wiring
minus fault matrix), done per destination edge switch — i.e. per
position prefix, the granularity of PortLand forwarding:

* ``D_aggs(e)`` — aggregation switches that can still deliver *down* to
  edge ``e`` (alive agg↔e link);
* ``D_cores(e)`` — cores with an alive link to some member of
  ``D_aggs(e)``.

Then, for traffic addressed to ``e``'s prefix:

* another edge in the same pod may only use uplinks into ``D_aggs(e)``;
* an edge in a different pod may only use uplinks to aggregation
  switches that still have an alive link to some core in ``D_cores(e)``;
* an aggregation switch in a different pod may only use uplinks to
  cores in ``D_cores(e)``.

A switch whose default ECMP set already satisfies the constraint gets no
message; a prefix with an empty allowed set gets an empty override
(drop — the prefix is genuinely unreachable). Local failures (a
switch's own ports) are pruned by the switch agent itself and need no
message. This handles arbitrary combinations of simultaneous failures,
which the paper's single-failure narrative composes implicitly.
"""

from __future__ import annotations

from repro.portland.messages import SwitchLevel
from repro.portland.pmac import position_prefix
from repro.portland.topology_view import FabricView

#: switch_id -> {(prefix_value, prefix_len): set of neighbor ids to avoid}
Overrides = dict[int, dict[tuple[int, int], set[int]]]


def compute_overrides(view: FabricView) -> Overrides:
    """Full override map implied by the current fault matrix.

    Recomputed from scratch on every fault-matrix change and diffed
    against what has been sent — simple, idempotent, and naturally
    correct for overlapping failures and recoveries.
    """
    overrides: Overrides = {}
    if not view.failed:
        return overrides
    for edge in view.edges():
        pod = view.pod(edge)
        position = view.position(edge)
        if pod is None or position is None:
            continue
        if not _touched_by_failure(view, edge, pod):
            continue
        value, bits = position_prefix(pod, position)
        prefix = (value.value, bits)
        d_aggs = {agg for agg in view.aggs_in_pod(pod) if view.alive(agg, edge)}
        d_cores = {
            core
            for agg in d_aggs
            for core in view.core_neighbors(agg)
            if view.alive(agg, core)
        }
        _edge_overrides(view, overrides, edge, pod, prefix, d_aggs, d_cores)
        _agg_overrides(view, overrides, pod, prefix, d_cores)
    return overrides


def _touched_by_failure(view: FabricView, edge: int, pod: int) -> bool:
    """Whether any failed link could affect reachability of ``edge``:
    a link touching the edge itself, its pod's aggregation switches, or
    those switches' cores."""
    relevant = {edge}
    for agg in view.aggs_in_pod(pod):
        relevant.add(agg)
        relevant.update(view.core_neighbors(agg))
    return any(relevant & link for link in view.failed)


def _edge_overrides(view: FabricView, overrides: Overrides, edge: int,
                    pod: int, prefix: tuple[int, int],
                    d_aggs: set[int], d_cores: set[int]) -> None:
    for other in view.edges():
        if other == edge:
            continue
        phys_up = {nbr for nbr in view.neighbors_of(other).values()
                   if view.level(nbr) is SwitchLevel.AGGREGATION}
        if view.pod(other) == pod:
            allowed = phys_up & d_aggs
        else:
            allowed = {
                agg for agg in phys_up
                if any(view.alive(agg, core)
                       for core in view.core_neighbors(agg)
                       if core in d_cores)
            }
        avoid = phys_up - allowed
        if avoid:
            overrides.setdefault(other, {})[prefix] = avoid


def _agg_overrides(view: FabricView, overrides: Overrides, pod: int,
                   prefix: tuple[int, int], d_cores: set[int]) -> None:
    for agg in view.aggregations():
        if view.pod(agg) == pod:
            continue  # same-pod aggs route down directly or drop
        phys_cores = set(view.core_neighbors(agg))
        allowed = phys_cores & d_cores
        avoid = phys_cores - allowed
        if avoid:
            overrides.setdefault(agg, {})[prefix] = avoid


def diff_overrides(old: Overrides, new: Overrides):
    """Changes needed to move a fabric from ``old`` to ``new``.

    Returns ``(updates, clears)`` where ``updates`` is a list of
    ``(switch_id, prefix, avoid_ids)`` to (re)send and ``clears`` a list
    of ``(switch_id, prefix)`` to retract.
    """
    updates: list[tuple[int, tuple[int, int], tuple[int, ...]]] = []
    clears: list[tuple[int, tuple[int, int]]] = []
    switch_ids = set(old) | set(new)
    for switch_id in switch_ids:
        old_map = old.get(switch_id, {})
        new_map = new.get(switch_id, {})
        for prefix, avoid in new_map.items():
            if old_map.get(prefix) != avoid:
                updates.append((switch_id, prefix, tuple(sorted(avoid))))
        for prefix in old_map:
            if prefix not in new_map:
                clears.append((switch_id, prefix))
    return updates, clears


def apply_diff(base: Overrides, updates, clears) -> Overrides:
    """Apply a :func:`diff_overrides` result to ``base``.

    Returns a new override map; ``base`` is not mutated. By construction
    ``apply_diff(old, *diff_overrides(old, new)) == new`` — the round-trip
    property tests rely on this to prove that the incremental
    FaultUpdate/FaultClear stream a fabric receives always lands it in
    the same state a from-scratch recomputation would.
    """
    result: Overrides = {
        switch_id: {prefix: set(avoid) for prefix, avoid in prefix_map.items()}
        for switch_id, prefix_map in base.items()
    }
    for switch_id, prefix, avoid in updates:
        result.setdefault(switch_id, {})[prefix] = set(avoid)
    for switch_id, prefix in clears:
        prefix_map = result.get(switch_id)
        if prefix_map is None:
            continue
        prefix_map.pop(prefix, None)
        if not prefix_map:
            del result[switch_id]
    return result
