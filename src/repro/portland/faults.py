"""Fault-matrix → prescriptive forwarding overrides (paper §3.6).

When a switch reports a failed link, the fabric manager does not flood
the event fabric-wide (the link-state approach it replaces); it computes
exactly which switches' forwarding decisions are invalidated and sends
each of them one :class:`~repro.portland.messages.FaultUpdate` naming
the destination prefix and the next-hop neighbours to avoid. Recovery
sends the matching clears.

The computation is a reachability analysis on the *alive* graph (wiring
minus fault matrix), done per destination edge switch — i.e. per
position prefix, the granularity of PortLand forwarding:

* ``D_aggs(e)`` — aggregation switches that can still deliver *down* to
  edge ``e`` (alive agg↔e link);
* ``D_cores(e)`` — cores with an alive link to some member of
  ``D_aggs(e)``.

Then, for traffic addressed to ``e``'s prefix:

* another edge in the same pod may only use uplinks into ``D_aggs(e)``;
* an edge in a different pod may only use uplinks to aggregation
  switches that still have an alive link to some core in ``D_cores(e)``;
* an aggregation switch in a different pod may only use uplinks to
  cores in ``D_cores(e)``.

A switch whose default ECMP set already satisfies the constraint gets no
message; a prefix with an empty allowed set gets an empty override
(drop — the prefix is genuinely unreachable). Local failures (a
switch's own ports) are pruned by the switch agent itself and need no
message. This handles arbitrary combinations of simultaneous failures,
which the paper's single-failure narrative composes implicitly.
"""

from __future__ import annotations

from repro.portland.messages import SwitchLevel
from repro.portland.pmac import position_prefix
from repro.portland.topology_view import FabricView

#: switch_id -> {(prefix_value, prefix_len): set of neighbor ids to avoid}
Overrides = dict[int, dict[tuple[int, int], set[int]]]


def compute_overrides(view: FabricView) -> Overrides:
    """Full override map implied by the current fault matrix.

    Recomputed from scratch on every fault-matrix change and diffed
    against what has been sent — simple, idempotent, and naturally
    correct for overlapping failures and recoveries. The incremental
    variant (:class:`OverrideComputer`) maintains the same map while
    re-deriving only the prefixes a given change can touch.
    """
    overrides: Overrides = {}
    if not view.failed:
        return overrides
    for edge in view.edges():
        pod = view.pod(edge)
        position = view.position(edge)
        if pod is None or position is None:
            continue
        if not _touched_by_failure(view, edge, pod):
            continue
        prefix, d_aggs, d_cores = _dest_state(view, edge, pod, position)
        _edge_overrides(view, overrides, edge, pod, prefix, d_aggs, d_cores)
        _agg_overrides(view, overrides, pod, prefix, d_cores)
    return overrides


def _dest_state(view: FabricView, edge: int, pod: int,
                position: int) -> tuple[tuple[int, int], set[int], set[int]]:
    """``(prefix, D_aggs, D_cores)`` for one destination edge."""
    value, bits = position_prefix(pod, position)
    d_aggs = {agg for agg in view.aggs_in_pod(pod) if view.alive(agg, edge)}
    d_cores = {
        core
        for agg in d_aggs
        for core in view.core_neighbors(agg)
        if view.alive(agg, core)
    }
    return (value.value, bits), d_aggs, d_cores


def _relevance(view: FabricView, edge: int, pod: int) -> set[int]:
    """Switches whose links feed ``edge``'s reachability analysis: the
    edge itself, its pod's aggregation switches, and their cores. Every
    quantity in :func:`_dest_state` and the per-sender avoid sets reads
    only links with at least one endpoint in this set (an uplink chosen
    by any sender must land on a core wired to the destination pod to
    matter, and that core is in the set)."""
    relevant = {edge}
    for agg in view.aggs_in_pod(pod):
        relevant.add(agg)
        relevant.update(view.core_neighbors(agg))
    return relevant


def _touched_by_failure(view: FabricView, edge: int, pod: int) -> bool:
    """Whether any failed link could affect reachability of ``edge``:
    a link touching the edge itself, its pod's aggregation switches, or
    those switches' cores."""
    relevant = _relevance(view, edge, pod)
    return any(relevant & link for link in view.failed)


def _avoid_for_edge(view: FabricView, other: int, pod: int,
                    d_aggs: set[int], d_cores: set[int]) -> set[int]:
    """Uplinks edge ``other`` must avoid for the prefix of a destination
    edge in ``pod`` with viable sets ``d_aggs``/``d_cores``."""
    phys_up = {nbr for nbr in view.neighbors_of(other).values()
               if view.level(nbr) is SwitchLevel.AGGREGATION}
    if view.pod(other) == pod:
        allowed = phys_up & d_aggs
    else:
        allowed = {
            agg for agg in phys_up
            if any(view.alive(agg, core)
                   for core in view.core_neighbors(agg)
                   if core in d_cores)
        }
    return phys_up - allowed


def _avoid_for_agg(view: FabricView, agg: int, d_cores: set[int]) -> set[int]:
    """Core uplinks an other-pod aggregation switch must avoid."""
    phys_cores = set(view.core_neighbors(agg))
    return phys_cores - (phys_cores & d_cores)


def _edge_overrides(view: FabricView, overrides: Overrides, edge: int,
                    pod: int, prefix: tuple[int, int],
                    d_aggs: set[int], d_cores: set[int]) -> None:
    for other in view.edges():
        if other == edge:
            continue
        avoid = _avoid_for_edge(view, other, pod, d_aggs, d_cores)
        if avoid:
            overrides.setdefault(other, {})[prefix] = avoid


def _agg_overrides(view: FabricView, overrides: Overrides, pod: int,
                   prefix: tuple[int, int], d_cores: set[int]) -> None:
    for agg in view.aggregations():
        if view.pod(agg) == pod:
            continue  # same-pod aggs route down directly or drop
        avoid = _avoid_for_agg(view, agg, d_cores)
        if avoid:
            overrides.setdefault(agg, {})[prefix] = avoid


class OverrideComputer:
    """Incrementally maintained override map.

    Tracks the same ``Overrides`` that :func:`compute_overrides` would
    return for the current view, but on each change re-derives only the
    destination prefixes the change can affect:

    * a fault-matrix flip on link *l* touches exactly the prefixes whose
      :func:`_relevance` set intersects *l*'s endpoints;
    * a wiring change at switch *s* (LDP pruning or re-adding links in
      its neighbour report) additionally rewrites *s*'s own avoid rows
      for every prefix, since ``phys_up``/``core_neighbors`` of a sender
      are read from its own record only — rows are recomputed from the
      cached ``(D_aggs, D_cores)`` of each unaffected destination.

    Level/pod/position changes (and anything else the caller cannot
    attribute) fall back to a full recompute. ``edges_examined`` counts
    destination prefixes re-derived over the computer's lifetime — the
    per-event recompute-work metric the fig. 15 bench gates on.
    """

    def __init__(self) -> None:
        self.overrides: Overrides = {}
        #: edge_id -> (prefix, pod, d_aggs, d_cores) for touched edges.
        self._dest: dict[int, tuple[tuple[int, int], int,
                                    set[int], set[int]]] = {}
        self._primed = False
        self.edges_examined = 0
        self.full_recomputes = 0
        self.incremental_updates = 0

    def reset(self) -> None:
        """Forget everything (fabric-manager restart)."""
        self.overrides = {}
        self._dest = {}
        self._primed = False

    def update(self, view: FabricView,
               changed_links: set[frozenset[int]] | None = None,
               changed_switches: set[int] | None = None) -> Overrides:
        """Bring the map up to date with ``view`` and return it.

        ``changed_links`` are links whose fault or wiring state flipped
        since the last update; ``changed_switches`` are switches whose
        reported neighbour set changed. ``None`` (or an unprimed
        computer) means "unknown" and forces a full recompute.
        """
        if changed_links is None or not self._primed:
            self._full(view)
            return self.overrides
        self.incremental_updates += 1
        changed_ids: set[int] = set(changed_switches or ())
        for link in changed_links:
            changed_ids.update(link)
        self._recompute_affected(view, changed_ids)
        if changed_switches:
            self._recompute_rows(view, set(changed_switches))
        return self.overrides

    # -- full path ----------------------------------------------------

    def _full(self, view: FabricView) -> None:
        self.full_recomputes += 1
        self.overrides = {}
        self._dest = {}
        self._primed = True
        if not view.failed:
            return
        for edge in view.edges():
            pod = view.pod(edge)
            position = view.position(edge)
            if pod is None or position is None:
                continue
            if not _touched_by_failure(view, edge, pod):
                continue
            self.edges_examined += 1
            prefix, d_aggs, d_cores = _dest_state(view, edge, pod, position)
            self._dest[edge] = (prefix, pod, d_aggs, d_cores)
            _edge_overrides(view, self.overrides, edge, pod, prefix,
                            d_aggs, d_cores)
            _agg_overrides(view, self.overrides, pod, prefix, d_cores)

    # -- incremental path ---------------------------------------------

    def _recompute_affected(self, view: FabricView,
                            changed_ids: set[int]) -> set[int]:
        """Re-derive every destination prefix whose relevance set meets
        ``changed_ids``; returns the edge ids that were re-derived."""
        recomputed: set[int] = set()
        live_edges = set(view.edges())
        for edge in sorted(live_edges | set(self._dest)):
            pod = view.pod(edge)
            position = view.position(edge)
            cached = self._dest.get(edge)
            if edge not in live_edges or pod is None or position is None:
                if cached is not None:  # edge left the view: retract
                    self._strip_prefix(cached[0])
                    del self._dest[edge]
                    recomputed.add(edge)
                continue
            if not (_relevance(view, edge, pod) & changed_ids):
                continue
            recomputed.add(edge)
            self.edges_examined += 1
            if cached is not None:
                self._strip_prefix(cached[0])
                del self._dest[edge]
            if not _touched_by_failure(view, edge, pod):
                continue
            prefix, d_aggs, d_cores = _dest_state(view, edge, pod, position)
            self._strip_prefix(prefix)
            self._dest[edge] = (prefix, pod, d_aggs, d_cores)
            _edge_overrides(view, self.overrides, edge, pod, prefix,
                            d_aggs, d_cores)
            _agg_overrides(view, self.overrides, pod, prefix, d_cores)
        return recomputed

    def _recompute_rows(self, view: FabricView, senders: set[int]) -> None:
        """Rewrite the avoid rows of wiring-changed sender switches for
        every prefix that was *not* re-derived this round."""
        for sender in senders:
            level = view.level(sender)
            for edge, (prefix, pod, d_aggs, d_cores) in self._dest.items():
                if sender == edge:
                    continue
                if level is SwitchLevel.EDGE:
                    avoid = _avoid_for_edge(view, sender, pod, d_aggs, d_cores)
                elif (level is SwitchLevel.AGGREGATION
                      and view.pod(sender) != pod):
                    avoid = _avoid_for_agg(view, sender, d_cores)
                else:
                    avoid = set()
                self._set_row(sender, prefix, avoid)

    def _set_row(self, switch_id: int, prefix: tuple[int, int],
                 avoid: set[int]) -> None:
        if avoid:
            self.overrides.setdefault(switch_id, {})[prefix] = avoid
            return
        prefix_map = self.overrides.get(switch_id)
        if prefix_map is not None:
            prefix_map.pop(prefix, None)
            if not prefix_map:
                del self.overrides[switch_id]

    def _strip_prefix(self, prefix: tuple[int, int]) -> None:
        for switch_id in list(self.overrides):
            prefix_map = self.overrides[switch_id]
            prefix_map.pop(prefix, None)
            if not prefix_map:
                del self.overrides[switch_id]


def diff_overrides(old: Overrides, new: Overrides):
    """Changes needed to move a fabric from ``old`` to ``new``.

    Returns ``(updates, clears)`` where ``updates`` is a list of
    ``(switch_id, prefix, avoid_ids)`` to (re)send and ``clears`` a list
    of ``(switch_id, prefix)`` to retract.
    """
    updates: list[tuple[int, tuple[int, int], tuple[int, ...]]] = []
    clears: list[tuple[int, tuple[int, int]]] = []
    switch_ids = set(old) | set(new)
    for switch_id in switch_ids:
        old_map = old.get(switch_id, {})
        new_map = new.get(switch_id, {})
        for prefix, avoid in new_map.items():
            if old_map.get(prefix) != avoid:
                updates.append((switch_id, prefix, tuple(sorted(avoid))))
        for prefix in old_map:
            if prefix not in new_map:
                clears.append((switch_id, prefix))
    return updates, clears


def apply_diff(base: Overrides, updates, clears) -> Overrides:
    """Apply a :func:`diff_overrides` result to ``base``.

    Returns a new override map; ``base`` is not mutated. By construction
    ``apply_diff(old, *diff_overrides(old, new)) == new`` — the round-trip
    property tests rely on this to prove that the incremental
    FaultUpdate/FaultClear stream a fabric receives always lands it in
    the same state a from-scratch recomputation would.
    """
    result: Overrides = {
        switch_id: {prefix: set(avoid) for prefix, avoid in prefix_map.items()}
        for switch_id, prefix_map in base.items()
    }
    for switch_id, prefix, avoid in updates:
        result.setdefault(switch_id, {})[prefix] = set(avoid)
    for switch_id, prefix in clears:
        prefix_map = result.get(switch_id)
        if prefix_map is None:
            continue
        prefix_map.pop(prefix, None)
        if not prefix_map:
            del result[switch_id]
    return result
