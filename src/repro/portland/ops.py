"""Replayable fabric control operations (the FM-shard control channel).

The sharded parallel kernel (:mod:`repro.sim.parallel`) carries fault
injections as timestamped messages from the coordinator to every shard;
the single-process reference kernel pre-schedules the same operations.
Both must apply them *identically* — same simulated instant, same event
priority, same side effects — or the determinism contract breaks. This
module is that shared application point: a :class:`FaultOp` is a plain
picklable value, and :func:`apply_fault_op` is the one function either
kernel calls to realize it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class FaultOp:
    """One timestamped control operation against the fabric.

    ``time`` is relative to the start of the measurement window when the
    op sits in a run spec; the kernel rebases it to absolute simulated
    time before scheduling.

    Kinds:
        ``"fail"``         — fail the link between nodes ``a`` and ``b``.
        ``"recover"``      — recover that link.
        ``"fail-switch"``  — fail every live switch-switch link touching
                             switch ``a`` (silent whole-switch death).
    """

    time: float
    kind: str
    a: str = ""
    b: str = ""


def _switch_links(fabric, name: str):
    """Switch-switch links touching ``name``, in builder wiring order."""
    return [link for (x, y), link in fabric.links.items()
            if name in (x, y)
            and not x.startswith("host") and not y.startswith("host")]


def apply_fault_op(fabric, op: FaultOp) -> None:
    """Apply ``op`` to ``fabric`` now. Deterministic: iteration order is
    the builder's wiring order, identical in every replica."""
    if op.kind == "fail":
        fabric.link_between(op.a, op.b).fail()
    elif op.kind == "recover":
        fabric.link_between(op.a, op.b).recover()
    elif op.kind == "fail-switch":
        for link in _switch_links(fabric, op.a):
            if link.can_carry(link.a) or link.can_carry(link.b):
                link.fail()
    else:
        raise SimulationError(f"unknown fault op kind {op.kind!r}")
