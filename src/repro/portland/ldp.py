"""The Location Discovery Protocol (paper §3.2–3.3).

Switches start with zero configuration and learn, purely from Location
Discovery Messages (LDMs) exchanged with neighbours:

* their **level** — a switch with wired-but-silent ports (hosts do not
  speak LDP) is an *edge* switch; a switch that hears an edge switch is
  *aggregation*; a switch that hears aggregation switches on every port
  is *core*;
* their **position** within the pod — edge switches propose a random
  unused position and their aggregation switches arbitrate uniqueness;
* their **pod** — one edge per pod (the lowest committed position;
  requests are staggered by position so position 0 wins when present)
  asks the fabric manager for a fresh pod number, and the value spreads
  through LDMs (aggregation adopts it from edges below; other edges
  adopt it from aggregation above);
* per-port **direction** (up/down) and the identity of each neighbour.

LDMs double as liveness probes: ``miss_threshold`` consecutive silent
periods on a port that used to have a neighbour declares the link dead —
this is the failure detector whose latency dominates Fig. 10.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.net.addresses import MacAddress
from repro.net.ethernet import ETHERTYPE_LDP, EthernetFrame
from repro.net.link import Port
from repro.net.packet import Packet
from repro.portland.config import PortlandConfig
from repro.portland.messages import (
    NO_POD,
    NO_POSITION,
    LocationDiscoveryMessage,
    PositionAck,
    PositionProposal,
    SwitchLevel,
    decode_ldp,
)
from repro.sim.process import PeriodicTask, Timer
from repro.switching.stp import bridge_mac_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.portland.switch import PortlandSwitch

#: Link-local destination for LDP frames.
LDP_MULTICAST = MacAddress.parse("01:80:c2:00:00:0e")

#: Hard cap on the position space (matches the 8-bit PMAC field).
MAX_POSITIONS = 256


class LdpListener(Protocol):
    """Callbacks the owning agent implements."""

    def on_location_complete(self) -> None:
        """Level (and pod/position where applicable) are now known."""

    def on_neighbor_changed(self, port_index: int) -> None:
        """A neighbour appeared on ``port_index`` or its info changed."""

    def on_neighbor_lost(self, port_index: int, info: "NeighborInfo") -> None:
        """The neighbour on ``port_index`` is gone (timeout or carrier)."""

    def request_pod(self) -> None:
        """Ask the fabric manager for a pod number (position-0 edge)."""


class NeighborInfo:
    """What we currently know about the switch across one port."""

    __slots__ = ("port_index", "switch_id", "level", "pod", "position",
                 "last_heard")

    def __init__(self, port_index: int, switch_id: int, now: float) -> None:
        self.port_index = port_index
        self.switch_id = switch_id
        self.level = SwitchLevel.UNKNOWN
        self.pod: int | None = None
        self.position: int | None = None
        self.last_heard = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Neighbor port={self.port_index} id={self.switch_id:#x} "
                f"{self.level.name} pod={self.pod} pos={self.position}>")


class _Proposal:
    """An outstanding position proposal."""

    __slots__ = ("position", "deadline", "grants", "rejected")

    def __init__(self, position: int, deadline: float) -> None:
        self.position = position
        self.deadline = deadline
        self.grants: set[int] = set()
        self.rejected = False


class LdpProcess:
    """Runs LDP on one switch."""

    def __init__(self, switch: "PortlandSwitch", config: PortlandConfig,
                 listener: LdpListener) -> None:
        self.switch = switch
        self.sim = switch.sim
        self.config = config
        self.listener = listener
        self.switch_mac = bridge_mac_for(switch.name)
        self.switch_id = self.switch_mac.value

        self.level = SwitchLevel.UNKNOWN
        self.pod: int | None = None
        self.position: int | None = None
        self.host_ports: set[int] = set()
        self.neighbors: dict[int, NeighborInfo] = {}

        self._seq = 0
        self._started_at = 0.0
        self._location_announced = False
        self._proposal: _Proposal | None = None
        self._rejected_positions: set[int] = set()
        self._position_range = 0  # grows on exhaustion
        self._pod_requested = False
        #: Aggregation role: position -> (edge_id, expires_at).
        self._grants: dict[int, tuple[int, float]] = {}
        self._rng = self.sim.random.stream(f"ldp/{switch.name}")

        self._pod_request_timer = Timer(self.sim, self._request_pod_now)
        self._beacon = PeriodicTask(self.sim, config.ldm_period_s, self._send_ldm,
                                    jitter=0.1, rng_name=f"ldm/{switch.name}")
        self._checker = PeriodicTask(self.sim, config.ldm_period_s / 2,
                                     self._check, jitter=0.1,
                                     rng_name=f"ldpchk/{switch.name}")
        #: LDMs transmitted (control-overhead measurement).
        self.ldms_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Begin beaconing and liveness checking."""
        self._started_at = self.sim.now
        self._beacon.start(self._rng.uniform(0, self.config.ldm_period_s))
        self._checker.start()
        # A preseeded switch (see :meth:`preseed`) is located from the
        # first instant; for dynamically discovered switches this is a
        # no-op (location_complete is still False here).
        self._maybe_announce()

    def preseed(self, level: SwitchLevel, pod: int | None = None,
                position: int | None = None,
                host_ports: tuple[int, ...] = ()) -> None:
        """Statically assign this switch's location before :meth:`start`.

        Topology schemes whose coordinates are known at build time (a
        generated leaf-spine design, Jellyfish's uniform ToR mesh —
        which LDP's three-level classifier cannot even express) install
        them here. Beaconing, neighbor discovery, and liveness detection
        all still run; only the classification/arbitration half of LDP
        is bypassed (``_classify`` returns immediately once ``level`` is
        set).
        """
        self.level = level
        self.pod = pod
        self.position = position
        self.host_ports = set(host_ports)

    @property
    def location_complete(self) -> bool:
        """Whether this switch fully knows where it is."""
        if self.level is SwitchLevel.EDGE:
            return self.pod is not None and self.position is not None
        if self.level is SwitchLevel.AGGREGATION:
            return self.pod is not None
        return self.level is SwitchLevel.CORE

    def set_pod(self, pod: int) -> None:
        """Install a pod number (from the fabric manager's PodReply)."""
        if self.pod is None:
            self.pod = pod
            self._pod_request_timer.stop()
            self._maybe_announce()

    # ------------------------------------------------------------------
    # Port direction helpers

    def data_ports(self) -> list[Port]:
        """All wired data-plane ports (excludes the control port)."""
        control = self.switch.control_port
        return [p for p in self.switch.ports
                if p is not control and p.link is not None]

    def up_ports(self) -> list[int]:
        """Port indices facing the next level up (confirmed neighbours)."""
        if self.level is SwitchLevel.EDGE:
            return sorted(i for i, n in self.neighbors.items()
                          if n.level is SwitchLevel.AGGREGATION)
        if self.level is SwitchLevel.AGGREGATION:
            return sorted(i for i, n in self.neighbors.items()
                          if n.level is SwitchLevel.CORE)
        return []

    def down_ports(self) -> list[int]:
        """Port indices facing the level below (or hosts, for edges)."""
        if self.level is SwitchLevel.EDGE:
            return sorted(self.host_ports)
        if self.level is SwitchLevel.AGGREGATION:
            return sorted(i for i, n in self.neighbors.items()
                          if n.level is SwitchLevel.EDGE)
        if self.level is SwitchLevel.CORE:
            return sorted(self.neighbors)
        return []

    # ------------------------------------------------------------------
    # Beaconing

    def _send_ldm(self) -> None:
        self._seq += 1
        message = LocationDiscoveryMessage(
            switch_id=self.switch_id,
            level=self.level,
            pod=self.pod if self.pod is not None else NO_POD,
            position=self.position if self.position is not None else NO_POSITION,
            seq=self._seq,
        )
        for port in self.data_ports():
            if port.index in self.host_ports:
                continue  # never bother hosts with LDMs once classified
            self.ldms_sent += 1
            port.send(EthernetFrame(LDP_MULTICAST, self.switch_mac,
                                    ETHERTYPE_LDP, message))

    # ------------------------------------------------------------------
    # Receive path (called by the agent for every LDP frame)

    def on_frame(self, frame: EthernetFrame, in_port: Port) -> None:
        """Dispatch one received LDP-family frame."""
        payload = frame.payload
        if isinstance(payload, (bytes, bytearray)):
            message: Packet = decode_ldp(bytes(payload))
        else:
            message = payload  # already an object
        if isinstance(message, LocationDiscoveryMessage):
            self._on_ldm(message, in_port)
        elif isinstance(message, PositionProposal):
            self._on_proposal(message, in_port)
        elif isinstance(message, PositionAck):
            self._on_ack(message, in_port)

    def _on_ldm(self, ldm: LocationDiscoveryMessage, in_port: Port) -> None:
        index = in_port.index
        info = self.neighbors.get(index)
        is_new = info is None or info.switch_id != ldm.switch_id
        if is_new:
            info = NeighborInfo(index, ldm.switch_id, self.sim.now)
            self.neighbors[index] = info
            # A port we thought faced a host turns out to face a switch.
            self.host_ports.discard(index)
        info.last_heard = self.sim.now
        changed = is_new
        pod = None if ldm.pod == NO_POD else ldm.pod
        position = None if ldm.position == NO_POSITION else ldm.position
        if (info.level, info.pod, info.position) != (ldm.level, pod, position):
            info.level = ldm.level
            info.pod = pod
            info.position = position
            changed = True

        self._adopt_pod(info)
        self._classify()
        # An aggregation switch pins a position grant when it sees the
        # edge actually beaconing with it.
        if (self.level is SwitchLevel.AGGREGATION
                and ldm.level is SwitchLevel.EDGE and position is not None):
            self._grants[position] = (ldm.switch_id, float("inf"))
        if changed:
            self.listener.on_neighbor_changed(index)

    def _adopt_pod(self, info: NeighborInfo) -> None:
        if self.pod is not None or info.pod is None:
            return
        if (self.level is SwitchLevel.EDGE
                and info.level is SwitchLevel.AGGREGATION):
            self.pod = info.pod
            self._pod_request_timer.stop()
            self._maybe_announce()
        elif (self.level is SwitchLevel.AGGREGATION
              and info.level is SwitchLevel.EDGE):
            self.pod = info.pod
            self._maybe_announce()

    # ------------------------------------------------------------------
    # Level classification

    def _classify(self) -> None:
        if self.level is not SwitchLevel.UNKNOWN:
            return
        if any(n.level is SwitchLevel.EDGE for n in self.neighbors.values()):
            self.level = SwitchLevel.AGGREGATION
            self._maybe_announce()
            return
        wired = {p.index for p in self.data_ports()}
        heard = set(self.neighbors)
        silent = wired - heard
        waited = self.sim.now - self._started_at
        if (silent and heard
                and waited >= self.config.edge_detect_periods * self.config.ldm_period_s):
            self.level = SwitchLevel.EDGE
            self.host_ports = silent
            self._start_position_agreement()
            self._maybe_announce()
            return
        if (wired and heard == wired
                and all(n.level is SwitchLevel.AGGREGATION
                        for n in self.neighbors.values())):
            self.level = SwitchLevel.CORE
            self._maybe_announce()

    def _maybe_announce(self) -> None:
        if self._location_announced or not self.location_complete:
            return
        self._location_announced = True
        self.sim.trace.emit(self.sim.now, "ldp.located", self.switch.name,
                            level=self.level.name, pod=self.pod,
                            position=self.position)
        self.listener.on_location_complete()

    # ------------------------------------------------------------------
    # Position agreement (edge side)

    def _start_position_agreement(self) -> None:
        if self.position is not None or self._proposal is not None:
            return
        self._position_range = max(
            len([p for p in self.data_ports()
                 if p.index not in self.host_ports]), 1)
        self._propose()

    def _propose(self) -> None:
        candidates = [p for p in range(self._position_range)
                      if p not in self._rejected_positions]
        while not candidates and self._position_range < MAX_POSITIONS:
            self._position_range = min(self._position_range * 2, MAX_POSITIONS)
            candidates = [p for p in range(self._position_range)
                          if p not in self._rejected_positions]
        if not candidates:
            # Every position rejected: clear memory and start over (the
            # conflicting grants will have expired by now).
            self._rejected_positions.clear()
            candidates = list(range(self._position_range))
        position = self._rng.choice(candidates)
        self._proposal = _Proposal(position,
                                   self.sim.now + self.config.proposal_timeout_s)
        proposal = PositionProposal(self.switch_id, position)
        for index, info in self.neighbors.items():
            if info.level in (SwitchLevel.AGGREGATION, SwitchLevel.UNKNOWN):
                self.switch.ports[index].send(
                    EthernetFrame(LDP_MULTICAST, self.switch_mac,
                                  ETHERTYPE_LDP, proposal))

    def _on_ack(self, ack: PositionAck, in_port: Port) -> None:
        proposal = self._proposal
        if (proposal is None or self.position is not None
                or ack.position != proposal.position):
            return
        if not ack.granted:
            self._rejected_positions.add(ack.position)
            self._proposal = None
            self._propose()
            return
        proposal.grants.add(ack.switch_id)
        # Commit once every known upward neighbour has granted.
        upward = {n.switch_id for n in self.neighbors.values()
                  if n.level in (SwitchLevel.AGGREGATION, SwitchLevel.UNKNOWN)}
        if upward and upward <= proposal.grants:
            self._commit_position(proposal.position)

    def _commit_position(self, position: int) -> None:
        self.position = position
        self._proposal = None
        self.sim.trace.emit(self.sim.now, "ldp.position", self.switch.name,
                            position=position)
        # One edge per pod must obtain the pod number from the fabric
        # manager. In a full fat tree that is whoever got position 0;
        # on sparser trees position 0 may be vacant, so requests are
        # staggered by position — the lowest committed position fires
        # first and everyone else learns the pod through LDMs (which
        # cancels their pending request).
        if self.pod is None and not self._pod_requested:
            delay = position * 3 * self.config.ldm_period_s
            self._pod_request_timer.start(delay)
        self._maybe_announce()

    def _request_pod_now(self) -> None:
        if self.pod is not None or self._pod_requested:
            return
        self._pod_requested = True
        self.listener.request_pod()

    # ------------------------------------------------------------------
    # Position arbitration (aggregation side)

    def _on_proposal(self, proposal: PositionProposal, in_port: Port) -> None:
        if self.level is not SwitchLevel.AGGREGATION:
            return
        granted = self._grant(proposal.position, proposal.switch_id)
        ack = PositionAck(self.switch_id, proposal.position, granted)
        in_port.send(EthernetFrame(LDP_MULTICAST, self.switch_mac,
                                   ETHERTYPE_LDP, ack))

    def _grant(self, position: int, edge_id: int) -> bool:
        current = self._grants.get(position)
        now = self.sim.now
        if current is not None:
            holder, expires = current
            if holder != edge_id and now < expires:
                return False
        self._grants[position] = (edge_id, now + self.config.grant_ttl_s)
        return True

    # ------------------------------------------------------------------
    # Liveness

    def _check(self) -> None:
        timeout = self.config.miss_threshold * self.config.ldm_period_s
        now = self.sim.now
        lost = [info for info in self.neighbors.values()
                if now - info.last_heard > timeout]
        for info in lost:
            self._lose_neighbor(info)
        proposal = self._proposal
        if (proposal is not None and self.position is None
                and now >= proposal.deadline):
            if proposal.grants:
                self._commit_position(proposal.position)
            else:
                self._proposal = None
                self._propose()

    def on_carrier_down(self, port: Port) -> None:
        """Immediate failure signal from the PHY (when links provide it)."""
        info = self.neighbors.get(port.index)
        if info is not None:
            self._lose_neighbor(info)

    def _lose_neighbor(self, info: NeighborInfo) -> None:
        del self.neighbors[info.port_index]
        # Release any position grant pinned to that edge.
        self._grants = {pos: (holder, exp)
                        for pos, (holder, exp) in self._grants.items()
                        if holder != info.switch_id}
        self.sim.trace.emit(self.sim.now, "ldp.neighbor_lost", self.switch.name,
                            port=info.port_index, neighbor=info.switch_id)
        self.listener.on_neighbor_lost(info.port_index, info)
