"""The fabric manager's view of the topology.

Built from the :class:`NeighborReport` messages switches send as LDP
converges, combined with the fault matrix. All fault-recovery and
multicast computations run against this view — the fabric manager never
peeks at simulator internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.portland.messages import NO_POD, NO_POSITION, SwitchLevel


@dataclass
class SwitchRecord:
    """Everything the fabric manager knows about one switch."""

    switch_id: int
    level: SwitchLevel = SwitchLevel.UNKNOWN
    pod: int | None = None
    position: int | None = None
    #: port index -> (neighbor switch id, neighbor level)
    neighbors: dict[int, tuple[int, SwitchLevel]] = field(default_factory=dict)

    def update_from_report(self, level: SwitchLevel, pod: int, position: int,
                           neighbors) -> bool:
        """Apply a NeighborReport; True if anything actually changed."""
        new = (level,
               None if pod == NO_POD else pod,
               None if position == NO_POSITION else position,
               {port: (nbr, lvl) for port, nbr, lvl in neighbors})
        changed = new != (self.level, self.pod, self.position, self.neighbors)
        self.level, self.pod, self.position, self.neighbors = new
        return changed


class FabricView:
    """Topology queries over the switch records plus the fault matrix.

    The *physical* structure (who is wired to whom, core groups) ignores
    the fault matrix; :meth:`alive` applies it.
    """

    def __init__(self, switches: dict[int, SwitchRecord],
                 failed: set[frozenset[int]]) -> None:
        self.switches = switches
        self.failed = failed

    # ------------------------------------------------------------------
    # Structure

    def level(self, switch_id: int) -> SwitchLevel:
        record = self.switches.get(switch_id)
        return record.level if record is not None else SwitchLevel.UNKNOWN

    def pod(self, switch_id: int) -> int | None:
        record = self.switches.get(switch_id)
        return record.pod if record is not None else None

    def position(self, switch_id: int) -> int | None:
        record = self.switches.get(switch_id)
        return record.position if record is not None else None

    def edges(self) -> list[int]:
        """All edge-switch ids."""
        return [sid for sid, r in self.switches.items()
                if r.level is SwitchLevel.EDGE]

    def aggregations(self) -> list[int]:
        """All aggregation-switch ids."""
        return [sid for sid, r in self.switches.items()
                if r.level is SwitchLevel.AGGREGATION]

    def cores(self) -> list[int]:
        """All core-switch ids."""
        return [sid for sid, r in self.switches.items()
                if r.level is SwitchLevel.CORE]

    def edges_in_pod(self, pod: int) -> list[int]:
        return [sid for sid in self.edges() if self.pod(sid) == pod]

    def aggs_in_pod(self, pod: int) -> list[int]:
        return [sid for sid in self.aggregations() if self.pod(sid) == pod]

    def neighbors_of(self, switch_id: int) -> dict[int, int]:
        """port -> neighbor id for one switch (physical)."""
        record = self.switches.get(switch_id)
        if record is None:
            return {}
        return {port: nbr for port, (nbr, _lvl) in record.neighbors.items()}

    def port_toward(self, switch_id: int, neighbor_id: int) -> int | None:
        """The (lowest) port on ``switch_id`` wired to ``neighbor_id``."""
        for port, nbr in sorted(self.neighbors_of(switch_id).items()):
            if nbr == neighbor_id:
                return port
        return None

    def adjacent(self, a: int, b: int) -> bool:
        """Physically wired (either side reported it)."""
        return (b in self.neighbors_of(a).values()
                or a in self.neighbors_of(b).values())

    def alive(self, a: int, b: int) -> bool:
        """Wired and not in the fault matrix."""
        return self.adjacent(a, b) and frozenset((a, b)) not in self.failed

    # ------------------------------------------------------------------
    # Core groups

    def core_neighbors(self, agg_id: int) -> list[int]:
        """Cores physically wired to an aggregation switch."""
        return [nbr for nbr in self.neighbors_of(agg_id).values()
                if self.level(nbr) is SwitchLevel.CORE]

    def agg_group(self, agg_id: int) -> set[int]:
        """All aggregation switches sharing a core with ``agg_id``.

        In a fat tree this is "the same index in every pod" — the set a
        remote edge must avoid when this aggregation switch loses a link
        to an edge below it. Includes ``agg_id`` itself. Derived purely
        from physical wiring, so it also works on irregular multi-rooted
        trees.
        """
        group = {agg_id}
        for core in self.core_neighbors(agg_id):
            for nbr in self.neighbors_of(core).values():
                if self.level(nbr) is SwitchLevel.AGGREGATION:
                    group.add(nbr)
        return group
