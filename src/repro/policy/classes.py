"""Traffic classes: the DSCP → queue-class mapping.

The model follows the VL2/DiffServ convention with two serving classes:
*bulk* (best effort, class 0) and *priority* (latency-sensitive,
class 1). The class is derived from the IPv4 DSCP field at the sending
host and stamped on the Ethernet frame (``EthernetFrame.tclass``) so
links and switches never have to parse IP headers on the fast path.

Class 0 is the universal default: a fabric that never sends a non-zero
DSCP behaves — event for event, byte for byte — exactly as it did
before classes existed (the golden-trace tests pin this).
"""

from __future__ import annotations

#: Best-effort / bulk traffic (elephants, background transfers).
CLASS_BULK = 0
#: Latency-sensitive traffic (mice, control RPCs).
CLASS_PRIORITY = 1
#: Number of serving classes at a strict-priority port.
NUM_CLASSES = 2

#: Default per-hop behaviour (best effort).
DSCP_CS0 = 0
#: Expedited forwarding — the conventional low-latency code point.
DSCP_EF = 46

#: DSCP values at or above this threshold map to the priority class
#: (CS4 and up: AF4x, CS5, EF, CS6/7 network control).
_PRIORITY_DSCP_FLOOR = 32


def class_of_dscp(dscp: int) -> int:
    """The serving class for a DSCP code point."""
    return CLASS_PRIORITY if dscp >= _PRIORITY_DSCP_FLOOR else CLASS_BULK
