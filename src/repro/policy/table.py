"""The fabric manager's ACL policy table.

A :class:`PolicyTable` is the authoritative record of which
(src IP, dst IP) pairs an operator has blocked. The fabric manager (or
the sharded cluster's coordinator) holds one and *materialises* each
rule as a priority-above-route ``Drop`` entry at the source host's
edge switch (:func:`repro.portland.forwarding.acl_drop`). The table is
operator intent, not soft state: it survives FM restarts, and rules
are re-pushed whenever either endpoint (re-)registers — which also
covers VM migration and post-restart soft-state refresh.

The verify subsystem reads the same table: :func:`PolicyTable.blocks`
is what turns a would-be blackhole between ACL'd endpoints into a
*justified* drop, and a delivery across a blocked pair into an
``acl-leak`` violation (see ``repro.verify.walk``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PolicyRule:
    """One directional ACL: drop IPv4 traffic from ``src_ip`` to
    ``dst_ip`` at the source's edge switch."""

    src_ip: str
    dst_ip: str

    @property
    def name(self) -> str:
        """The flow-table entry name this rule materialises as."""
        return f"acl:{self.src_ip}->{self.dst_ip}"


class PolicyTable:
    """An ordered set of :class:`PolicyRule` with O(1) pair lookup."""

    def __init__(self) -> None:
        self._rules: dict[tuple[str, str], PolicyRule] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules.values())

    def add(self, src_ip: str, dst_ip: str) -> PolicyRule:
        """Record (and return) the rule blocking ``src_ip -> dst_ip``.
        Idempotent."""
        key = (str(src_ip), str(dst_ip))
        rule = self._rules.get(key)
        if rule is None:
            rule = self._rules[key] = PolicyRule(*key)
        return rule

    def remove(self, src_ip: str, dst_ip: str) -> PolicyRule | None:
        """Forget the rule for the pair; returns it, or None."""
        return self._rules.pop((str(src_ip), str(dst_ip)), None)

    def blocks(self, src_ip, dst_ip) -> bool:
        """Whether traffic ``src_ip -> dst_ip`` is ACL-blocked."""
        return (str(src_ip), str(dst_ip)) in self._rules

    def involving(self, ip) -> list[PolicyRule]:
        """Every rule with ``ip`` as either endpoint (re-push set on
        host (re-)registration)."""
        ip = str(ip)
        return [rule for rule in self._rules.values()
                if rule.src_ip == ip or rule.dst_ip == ip]

    @property
    def pairs(self) -> list[tuple[str, str]]:
        """All blocked (src_ip, dst_ip) pairs, insertion-ordered."""
        return list(self._rules)
