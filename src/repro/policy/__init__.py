"""QoS and access-control policy for the PortLand fabric.

Two orthogonal pieces (see ``docs/POLICY.md``):

* **Traffic classes** — a DSCP-derived per-frame class
  (:func:`~repro.policy.classes.class_of_dscp`) served by
  strict-priority egress queues at every :class:`repro.net.link.Link`
  direction, and honoured by the fluid engine's per-class
  water-filling in hybrid/flow mode.
* **Edge ACLs** — (src IP, dst IP) drop pairs held in a
  :class:`~repro.policy.table.PolicyTable` on the fabric manager and
  installed as priority-above-route ``Drop`` entries at the source
  host's edge switch. The verification oracle treats drops between
  ACL'd endpoints as *justified* and any delivery across an installed
  ACL as an ``acl-leak`` violation.
"""

from repro.policy.classes import (
    CLASS_BULK,
    CLASS_PRIORITY,
    DSCP_CS0,
    DSCP_EF,
    NUM_CLASSES,
    class_of_dscp,
)
from repro.policy.table import PolicyRule, PolicyTable

__all__ = [
    "CLASS_BULK",
    "CLASS_PRIORITY",
    "DSCP_CS0",
    "DSCP_EF",
    "NUM_CLASSES",
    "class_of_dscp",
    "PolicyRule",
    "PolicyTable",
]
