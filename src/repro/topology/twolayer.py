"""Generated two-level fat trees (leaf-spine), sized by automated
parameter search over switch port counts (after Solnushkin, "Automated
Design of Two-Level Fat Trees").

A two-level fat tree is the degenerate-but-ubiquitous case of the
Al-Fares construction: ``L`` leaf switches, each with ``h`` host ports
and ``u`` uplinks, fully bipartite to ``S = u`` spine switches. Instead
of fixing a single port count ``k``, :func:`design_twolayer` searches
the available switch models (port counts) for the cheapest — fewest
switches, then fewest total ports — design that carries a requested
host count within an oversubscription bound ``h/u``.

Like the other topology modules this emits pure structure in the
:class:`FatTree` container: leaves as pod-0 "edge" switches, spines as
pod-0 "aggregation" switches, no cores. PMAC locators come from
:class:`repro.topology.scheme.TwoLayerFatTreeScheme`, which preseeds
every leaf's (pod=0, position=index) statically — a generated design is
installed knowledge, not something to rediscover by protocol.

Leaf port layout::

    [0, hosts_per_leaf)                     wired host ports
    [hosts_per_leaf, +spare_host_ports)     unwired (migration targets)
    [base, base + spines)                   uplinks, base = hosts+spare

Spine ``j`` uses port ``i`` for leaf ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.fattree import FatTree, HostSpec, WireSpec, host_ip, host_mac

#: Port counts of commodity switch models the designer may pick from.
DEFAULT_PORT_COUNTS = (8, 16, 24, 32, 48, 64)

#: The position field of the PMAC caps the number of leaves.
MAX_LEAVES = 256


@dataclass(frozen=True)
class TwoLayerDesign:
    """One feasible two-level fat-tree design."""

    leaves: int
    spines: int
    hosts_per_leaf: int
    #: Switch model (port count) used at each layer.
    leaf_ports: int
    spine_ports: int

    @property
    def num_hosts(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def num_switches(self) -> int:
        return self.leaves + self.spines

    @property
    def oversubscription(self) -> float:
        return self.hosts_per_leaf / self.spines


def design_twolayer(num_hosts: int,
                    port_counts: tuple[int, ...] = DEFAULT_PORT_COUNTS,
                    max_oversubscription: float = 1.0) -> TwoLayerDesign:
    """Search switch port counts for the cheapest two-level design.

    For every leaf model with ``p`` ports and every split ``p = h + u``
    (host ports + uplinks) meeting the oversubscription bound
    ``h/u <= max_oversubscription``, the design needs
    ``L = ceil(num_hosts / h)`` leaves and ``S = u`` spines, and a spine
    model with at least ``L`` ports. The cheapest design minimises
    (total switches, total switch ports, leaves) — deterministic
    tie-breaking so the same inputs always yield the same fabric.
    """
    if num_hosts < 2:
        raise TopologyError("a fabric needs at least 2 hosts")
    if max_oversubscription <= 0:
        raise TopologyError("max_oversubscription must be positive")
    best: tuple | None = None
    for leaf_ports in sorted(port_counts):
        for uplinks in range(1, leaf_ports):
            hosts_per_leaf = leaf_ports - uplinks
            if hosts_per_leaf / uplinks > max_oversubscription:
                continue
            leaves = -(-num_hosts // hosts_per_leaf)  # ceil
            if leaves < 2 or leaves > MAX_LEAVES:
                continue
            spine_models = [p for p in sorted(port_counts) if p >= leaves]
            if not spine_models:
                continue
            spine_ports = spine_models[0]
            design = TwoLayerDesign(leaves=leaves, spines=uplinks,
                                    hosts_per_leaf=hosts_per_leaf,
                                    leaf_ports=leaf_ports,
                                    spine_ports=spine_ports)
            cost = (design.num_switches,
                    leaves * leaf_ports + uplinks * spine_ports,
                    leaves, uplinks)
            if best is None or cost < best[0]:
                best = (cost, design)
    if best is None:
        raise TopologyError(
            f"no feasible two-level design for {num_hosts} hosts from "
            f"port counts {port_counts}")
    return best[1]


def leaf_name(index: int) -> str:
    return f"leaf-{index}"


def spine_name(index: int) -> str:
    return f"spine-{index}"


def build_twolayer(leaves: int, spines: int, hosts_per_leaf: int,
                   spare_host_ports: int = 0) -> FatTree:
    """Construct the two-level structure: full leaf-spine bipartite
    wiring with ``hosts_per_leaf`` hosts on every leaf."""
    if leaves < 2 or leaves > MAX_LEAVES:
        raise TopologyError(f"leaves must be in [2, {MAX_LEAVES}], got {leaves}")
    if spines < 1:
        raise TopologyError("need at least one spine")
    if hosts_per_leaf < 1:
        raise TopologyError("hosts_per_leaf must be >= 1")
    if spare_host_ports < 0:
        raise TopologyError("spare_host_ports must be >= 0")
    base = hosts_per_leaf + spare_host_ports
    tree = FatTree(k=max(base + spines, leaves))
    tree.edge_names.extend(leaf_name(i) for i in range(leaves))
    tree.agg_names.extend(spine_name(j) for j in range(spines))

    for i in range(leaves):
        leaf = leaf_name(i)
        for h in range(hosts_per_leaf):
            name = f"host-l{i}-{h}"
            tree.hosts.append(HostSpec(
                name=name, pod=0, edge=i, index=h,
                mac=host_mac(0, i, h), ip=host_ip(0, i, h),
                edge_switch=leaf, edge_port=h,
            ))
            tree.host_wires.append(WireSpec(name, 0, leaf, h))
        for j in range(spines):
            tree.switch_wires.append(WireSpec(leaf, base + j,
                                              spine_name(j), i))
    return tree


def build_designed_twolayer(num_hosts: int,
                            port_counts: tuple[int, ...] = DEFAULT_PORT_COUNTS,
                            max_oversubscription: float = 1.0,
                            spare_host_ports: int = 0) -> FatTree:
    """Design + build in one step: the structure for the cheapest
    feasible two-level fat tree carrying ``num_hosts`` hosts."""
    design = design_twolayer(num_hosts, port_counts, max_oversubscription)
    return build_twolayer(design.leaves, design.spines,
                          design.hosts_per_leaf,
                          spare_host_ports=spare_host_ports)
