"""Instantiate a PortLand fabric (switches + agents + FM + hosts) on a
fat-tree structure, plus the convergence helpers experiments rely on."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.flows.engine import FlowEngine
from repro.host.host import Host
from repro.net.link import Link
from repro.portland.agent import PortlandAgent
from repro.portland.config import PortlandConfig
from repro.portland.control import ControlNetwork
from repro.portland.fabric_manager import FabricManager
from repro.portland.switch import PortlandSwitch
from repro.sim.simulator import Simulator
from repro.switching.path_cache import DEFAULT_PATH_CAPACITY, PathCache
from repro.topology.fattree import FatTree, build_fat_tree


@dataclass
class LinkParams:
    """Physical parameters applied to data-plane links."""

    rate_bps: float = 1_000_000_000.0
    delay_s: float = 1e-6
    queue_bytes: int = 512 * 1024
    #: Whether switch-switch link failures raise carrier events. Turn
    #: off to force LDP-timeout-based detection (Fig. 10's regime).
    carrier_detect: bool = True
    #: Host links usually keep carrier detection (NIC unplug is visible).
    host_carrier_detect: bool = True
    #: Strict-priority per-class egress queues on every link (see
    #: docs/POLICY.md). No-op while all traffic is class 0; False
    #: degrades classed traffic to FIFO service (the bench-policy
    #: comparison arm).
    priority_queues: bool = True


@dataclass
class PortlandFabric:
    """A fully wired PortLand deployment."""

    sim: Simulator
    tree: FatTree
    config: PortlandConfig
    switches: dict[str, PortlandSwitch] = field(default_factory=dict)
    agents: dict[str, PortlandAgent] = field(default_factory=dict)
    hosts: dict[str, Host] = field(default_factory=dict)
    links: dict[tuple[str, str], Link] = field(default_factory=dict)
    fabric_manager: FabricManager | None = None
    control: ControlNetwork | None = None
    #: Shared compiled-path cache (None unless the config enables it).
    path_cache: PathCache | None = None
    #: Flow-level (fluid) engine (None unless ``config.flow_mode``).
    flow_engine: FlowEngine | None = None
    #: Topology scheme the fabric was built with (None = built-in fat
    #: tree; :meth:`routing_scheme` lazily materializes the equivalent
    #: FatTreeScheme for consumers that need the oracle interface).
    scheme: object | None = None

    def host_list(self) -> list[Host]:
        """Hosts in deterministic (spec) order."""
        return [self.hosts[spec.name] for spec in self.tree.hosts]

    def link_between(self, a: str, b: str) -> Link:
        """The data link between two named nodes."""
        link = self.links.get((a, b)) or self.links.get((b, a))
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def start(self) -> None:
        """Start every switch agent (begins LDP)."""
        for agent in self.agents.values():
            agent.start()

    def located(self) -> bool:
        """Whether every switch has completed location discovery (and,
        for schemes that preseed locations, heard all its wired
        neighbors — preseeding makes ``location_complete`` trivially
        true before any route exists)."""
        if not all(agent.ldp.location_complete
                   for agent in self.agents.values()):
            return False
        return self.scheme is None or self.scheme.converged(self)

    def routing_scheme(self):
        """The scheme governing this fabric's routing + path oracle."""
        if self.scheme is None:
            from repro.topology.scheme import FatTreeScheme

            self.scheme = FatTreeScheme(self.tree)
        return self.scheme

    def run_until_located(self, timeout_s: float = 5.0,
                          step_s: float = 0.02) -> float:
        """Run the simulation until LDP converges everywhere.

        Returns the convergence time. Raises on timeout — discovery that
        does not converge is an error worth failing loudly on.
        """
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.located():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if self.located():
            return self.sim.now
        missing = [name for name, agent in self.agents.items()
                   if not agent.ldp.location_complete]
        raise TopologyError(f"LDP did not converge; missing: {missing[:8]}"
                            f" (+{max(0, len(missing) - 8)} more)")

    def announce_hosts(self) -> None:
        """Have every host send a gratuitous ARP.

        Triggers edge discovery + fabric-manager registration for all
        hosts, so experiments start from a warm registry (as a
        long-running data center would be).
        """
        for host in self.hosts.values():
            host.gratuitous_arp()

    def all_hosts_registered(self) -> bool:
        """Whether the FM registry covers every host."""
        assert self.fabric_manager is not None
        return all(spec.ip in self.fabric_manager.hosts_by_ip
                   for spec in self.tree.hosts)

    def run_until_registered(self, timeout_s: float = 5.0,
                             step_s: float = 0.02) -> float:
        """Run until the FM knows every host (after announce_hosts)."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.all_hosts_registered():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if self.all_hosts_registered():
            return self.sim.now
        raise TopologyError("hosts did not register with the fabric manager")

    def decision_cache_stats(self) -> dict[str, int]:
        """Fabric-wide decision-cache counters (hits, misses, flushes...)."""
        from repro.sim.stats import aggregate_counters

        return aggregate_counters(
            switch.decision_cache.stats()
            for switch in self.switches.values()
            if switch.decision_cache is not None)

    def path_cache_stats(self) -> dict[str, int]:
        """Compiled-path cache counters (empty dict when disabled)."""
        return self.path_cache.stats() if self.path_cache is not None else {}

    def flow_engine_stats(self) -> dict[str, int]:
        """Fluid-engine counters (empty dict when flow mode is off)."""
        return self.flow_engine.stats() if self.flow_engine is not None else {}

    def agent_for(self, switch_name: str) -> PortlandAgent:
        """Agent of a named switch."""
        return self.agents[switch_name]

    def edge_agent_of(self, host_name: str) -> PortlandAgent:
        """The edge agent serving a named host."""
        spec = next(s for s in self.tree.hosts if s.name == host_name)
        return self.agents[spec.edge_switch]


def build_portland_fabric(
    sim: Simulator,
    k: int = 4,
    config: PortlandConfig | None = None,
    link_params: LinkParams | None = None,
    tree: FatTree | None = None,
    scheme=None,
) -> PortlandFabric:
    """Build (but do not start) a PortLand fabric.

    With no ``scheme`` this is the classic dynamically-discovered k-ary
    fat tree. Passing a :class:`~repro.topology.scheme.TopologyScheme`
    switches the locator assignment, route resolution, and fault policy
    to that backend (its ``tree`` supplies the structure unless ``tree``
    is given explicitly).
    """
    config = config or PortlandConfig()
    params = link_params or LinkParams()
    if tree is None:
        tree = scheme.tree if scheme is not None else build_fat_tree(k)
    fabric = PortlandFabric(sim=sim, tree=tree, config=config, scheme=scheme)

    # Port counts come from the wiring (irregular multi-rooted trees have
    # different radices per level), with the fat-tree k as the floor.
    ports_needed: dict[str, int] = {}
    for wire in tree.switch_wires + tree.host_wires:
        ports_needed[wire.node_a] = max(ports_needed.get(wire.node_a, 0),
                                        wire.port_a + 1)
        ports_needed[wire.node_b] = max(ports_needed.get(wire.node_b, 0),
                                        wire.port_b + 1)
    # Flow mode resolves and invalidates paths through the compiled-path
    # cache, so it forces the cache on (default-sized when unconfigured).
    path_entries = config.path_cache_entries
    if config.flow_mode and path_entries <= 0:
        path_entries = DEFAULT_PATH_CAPACITY
    if path_entries > 0:
        fabric.path_cache = PathCache(sim, capacity=path_entries)
    for name in tree.edge_names + tree.agg_names + tree.core_names:
        switch = PortlandSwitch(sim, name, max(tree.k, ports_needed.get(name, 0)),
                                agent_delay_s=config.agent_delay_s,
                                decision_cache_entries=config.decision_cache_entries)
        switch.path_cache = fabric.path_cache
        agent = PortlandAgent(switch, config, scheme=scheme)
        switch.attach_agent(agent)
        fabric.switches[name] = switch
        fabric.agents[name] = agent

    if scheme is not None:
        locations = scheme.static_locations()
        if locations:
            for name, location in locations.items():
                fabric.agents[name].ldp.preseed(
                    location.level, pod=location.pod,
                    position=location.position,
                    host_ports=tuple(location.host_ports))

    control = ControlNetwork(sim, config, scheme=scheme)
    fabric.control = control
    fabric.fabric_manager = control.fabric_manager
    for agent in fabric.agents.values():
        control.connect(agent)

    for spec in tree.hosts:
        fabric.hosts[spec.name] = Host(sim, spec.name, spec.mac, spec.ip)

    for wire in tree.switch_wires:
        link = Link(
            sim,
            fabric.switches[wire.node_a].port(wire.port_a),
            fabric.switches[wire.node_b].port(wire.port_b),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.carrier_detect,
            priority_queues=params.priority_queues,
        )
        fabric.links[(wire.node_a, wire.node_b)] = link
    for wire in tree.host_wires:
        link = Link(
            sim,
            fabric.hosts[wire.node_a].port(wire.port_a),
            fabric.switches[wire.node_b].port(wire.port_b),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.host_carrier_detect,
            priority_queues=params.priority_queues,
        )
        fabric.links[(wire.node_a, wire.node_b)] = link
    if config.flow_mode:
        fabric.flow_engine = FlowEngine(fabric)
    return fabric
