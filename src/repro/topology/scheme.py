"""The TopologyScheme abstraction: what a topology backend contributes.

PortLand's machinery divides cleanly into two halves. The *mechanism* —
PMAC rewriting, flow tables, the decision/path caches, the fluid flow
engine, the invariant oracle's hop bookkeeping — operates on frames,
entries, and hop lists and never needs to know what shape the fabric
is. The *policy* — how locators (PMAC pod/position) are assigned, which
routes get installed, what the fabric manager prescribes around faults,
and what the verification oracle considers reachable — is where the
topology lives. A :class:`TopologyScheme` packages the policy half so
backends can be swapped under the unchanged mechanism:

* **locator assignment** — either dynamic (return ``None`` from
  :meth:`static_locations` and let LDP discover levels/pods/positions,
  as the classic fat tree does) or static preseeding for fabrics LDP
  cannot classify (Jellyfish's uniform ToR mesh, a generated leaf-spine
  design);
* **route resolution** — either the built-in up*-down* entry refresh
  (return ``None`` from :meth:`route_entries`) or an explicit per-
  destination-prefix entry set (Jellyfish's shortest-path DAG ECMP);
* **fault policy** — :meth:`compute_overrides` is what the fabric
  manager pushes as prescriptive FaultUpdates; the agent asks
  :meth:`override_candidate_ports` which ports an override may select
  among;
* **path oracle** — :meth:`edge_reachable` (is a drop a blackhole?),
  :meth:`avoid_viable` (is an installed override minimal?), and
  :meth:`enumerate_paths` (the structural multipath set, for
  conformance tests and diversity benchmarks).

The built-in fat-tree behavior is the *absence* of a scheme (``scheme
is None`` everywhere), so the default pipeline is bit-identical to the
pre-abstraction code — the golden-trace test pins this. Passing
:class:`FatTreeScheme` explicitly exercises the same delegating logic
through the scheme interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.portland import faults
from repro.portland.messages import SwitchLevel
from repro.portland.pmac import position_prefix
from repro.portland.topology_view import FabricView
from repro.switching.stp import bridge_mac_for
from repro.topology.fattree import FatTree
from repro.workloads.failures import switch_link_names


@dataclass(frozen=True)
class StaticLocation:
    """A preseeded LDP location for one switch."""

    level: SwitchLevel
    pod: int | None = None
    position: int | None = None
    #: Host-facing port indices known a priori (wired hosts only; spare
    #: ports are adopted dynamically when something plugs in).
    host_ports: frozenset[int] = field(default_factory=frozenset)


def _switch_graph(tree: FatTree) -> "nx.Graph":
    """Switch-only adjacency graph (names as nodes)."""
    graph = nx.Graph()
    graph.add_nodes_from(tree.edge_names + tree.agg_names + tree.core_names)
    for wire in tree.switch_wires:
        graph.add_edge(wire.node_a, wire.node_b)
    return graph


def _wired_host_ports(tree: FatTree) -> dict[str, frozenset[int]]:
    ports: dict[str, set[int]] = {}
    for wire in tree.host_wires:
        ports.setdefault(wire.node_b, set()).add(wire.port_b)
    return {name: frozenset(indices) for name, indices in ports.items()}


class TopologyScheme:
    """Base contract; methods returning ``None`` mean "use the built-in
    fat-tree behavior" at that extension point."""

    name = "abstract"
    #: Whether host IPs follow the fat-tree ``10.pod.edge.host`` plan —
    #: i.e. the second octet is a real pod that balances a by-pod
    #: registry partition. Backends without pod structure in their IPs
    #: set this False so the sharded fabric manager falls back to a
    #: stable full-IP hash for registry-owner placement (see
    #: :func:`repro.portland.fm_shard.owner_index_for_ip`).
    pod_ip_plan = True

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self._graph = _switch_graph(tree)
        #: switch name <-> 48-bit switch id (the management MAC LDP uses).
        self.id_by_name = {node: bridge_mac_for(node).value
                          for node in self._graph.nodes}
        self.name_by_id = {sid: node for node, sid in self.id_by_name.items()}

    # -- locator assignment -------------------------------------------

    def static_locations(self) -> dict[str, StaticLocation] | None:
        """Preseeded locations per switch name, or ``None`` for dynamic
        LDP discovery."""
        return None

    def converged(self, fabric) -> bool:
        """Whether routing state is usable (beyond ``location_complete``).

        Preseeding makes ``location_complete`` true at t=0, before any
        neighbor has been heard; backends that preseed should gate
        convergence on neighbor discovery instead.
        """
        return True

    # -- route resolution (agent side) --------------------------------

    def route_entries(self, agent) -> list[tuple] | None:
        """Explicit ``route:`` entry specs for one agent's current
        neighbor state, or ``None`` for the built-in up*-down* refresh."""
        return None

    def override_candidate_ports(self, agent) -> list[int] | None:
        """Ports a fault override may select among, or ``None`` for the
        built-in uplink set."""
        return None

    # -- fault policy (fabric-manager side) ----------------------------

    def compute_overrides(self, view: FabricView) -> faults.Overrides:
        """Prescriptive overrides implied by the current fault matrix."""
        return faults.compute_overrides(view)

    # -- path oracle ---------------------------------------------------

    def edge_reachable(self, view: FabricView, src_edge: int,
                       dst_edge: int) -> bool:
        """Whether this scheme's forwarding discipline can deliver
        between two edge switches given the alive wiring."""
        raise NotImplementedError

    def avoid_viable(self, view: FabricView, agent, neighbor_id: int,
                     dst_edge: int) -> bool:
        """Whether an override's avoided neighbor could actually still
        deliver toward ``dst_edge`` (i.e. the override is non-minimal)."""
        raise NotImplementedError

    def enumerate_paths(self, src_edge: str, dst_edge: str,
                        limit: int | None = None) -> list[tuple[str, ...]]:
        """Structural multipath set between two edge switches (names).

        With ``limit=None``: every shortest switch path — for both tree
        levels and Jellyfish's shortest-path DAG this is exactly the
        ECMP path set healthy forwarding spreads over. With a ``limit``:
        the ``limit`` shortest simple paths (Yen), which for Jellyfish
        includes the non-minimal diversity its k-shortest-path routing
        literature measures.
        """
        if src_edge == dst_edge:
            return [(src_edge,)]
        if limit is None:
            paths = nx.all_shortest_paths(self._graph, src_edge, dst_edge)
        else:
            generator = nx.shortest_simple_paths(self._graph, src_edge,
                                                 dst_edge)
            paths = (path for path, _i in zip(generator, range(limit)))
        return [tuple(path) for path in paths]

    # -- campaign / workload support -----------------------------------

    def fault_candidate_links(self) -> list[tuple[str, str]]:
        """Switch-switch links a fault campaign may fail."""
        return switch_link_names(self.tree)

    def host_port_capacity(self, edge_name: str) -> set[int]:
        """All host-capable port indices on one edge switch (wired or
        spare) — the migration planner's target pool."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    def _alive_distances(self, view: FabricView, dst_id: int) -> dict[int, int]:
        """BFS hop counts to ``dst_id`` over the view's alive links."""
        dist = {dst_id: 0}
        frontier = [dst_id]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for nbr in view.neighbors_of(node).values():
                    if (nbr in dist or nbr not in view.switches
                            or not view.alive(node, nbr)):
                        continue
                    dist[nbr] = dist[node] + 1
                    nxt.append(nbr)
            frontier = nxt
        return dist

    def _all_neighbors_heard(self, fabric) -> bool:
        """Every switch's LDP neighbor table covers its wired links."""
        for node in self._graph.nodes:
            agent = fabric.agents[node]
            heard = {info.switch_id
                     for info in agent.ldp.neighbors.values()}
            expected = {self.id_by_name[nbr]
                        for nbr in self._graph.neighbors(node)}
            if not expected <= heard:
                return False
        return True


class FatTreeScheme(TopologyScheme):
    """The classic 3-tier fat tree as an explicit scheme.

    Pure delegation: dynamic LDP discovery, built-in entry refresh, the
    module-level override computation, and the up*-down* reachability
    oracle. Behaviorally identical to running with no scheme at all.
    """

    name = "fattree"

    def edge_reachable(self, view: FabricView, src_edge: int,
                       dst_edge: int) -> bool:
        # Imported per-call: repro.verify imports repro.topology back.
        from repro.verify import reachability

        return reachability.edge_reachable(view, src_edge, dst_edge)

    def avoid_viable(self, view: FabricView, agent, neighbor_id: int,
                     dst_edge: int) -> bool:
        from repro.verify import reachability

        if agent.level is SwitchLevel.EDGE:
            return reachability.deliverable_via_agg(view, neighbor_id, dst_edge)
        if agent.level is SwitchLevel.AGGREGATION:
            return reachability.deliverable_via_core(view, neighbor_id, dst_edge)
        return False

    def host_port_capacity(self, edge_name: str) -> set[int]:
        return set(range(self.tree.k // 2))


class TwoLayerFatTreeScheme(FatTreeScheme):
    """A generated leaf-spine design (see :mod:`repro.topology.twolayer`).

    Reuses the entire fat-tree pipeline — the two-level tree *is* a fat
    tree whose pods all collapsed into pod 0 and whose core layer is
    empty — but preseeds locations: a generated design's coordinates are
    known at build time, and LDP's edge/aggregation classifier cannot
    run without a third level to anchor the hierarchy (spines would
    classify fine, but leaf position arbitration and pod requests add
    convergence time for information the designer already has).
    """

    name = "twolayer"
    #: Every host lives in pod 0, so by-pod placement would pin the
    #: whole registry onto shard 0.
    pod_ip_plan = False

    def __init__(self, tree: FatTree) -> None:
        super().__init__(tree)
        self._host_ports = _wired_host_ports(tree)
        # Host capacity = the contiguous low leaf port range below the
        # first uplink (wired hosts + spare migration targets).
        base = min(w.port_a for w in tree.switch_wires
                   if w.node_a in set(tree.edge_names))
        self._capacity = set(range(base))

    def static_locations(self) -> dict[str, StaticLocation]:
        locations = {}
        for index, leaf in enumerate(self.tree.edge_names):
            locations[leaf] = StaticLocation(
                SwitchLevel.EDGE, pod=0, position=index,
                host_ports=self._host_ports.get(leaf, frozenset()))
        for spine in self.tree.agg_names:
            locations[spine] = StaticLocation(SwitchLevel.AGGREGATION, pod=0)
        return locations

    def converged(self, fabric) -> bool:
        return self._all_neighbors_heard(fabric)

    def host_port_capacity(self, edge_name: str) -> set[int]:
        return set(self._capacity)


#: Backend names accepted by :func:`scheme_for_backend` (and the CLI).
BACKEND_NAMES = ("fattree", "jellyfish", "twolayer")


def scheme_for_backend(backend: str, k: int = 4, hosts_per_edge: int = 1,
                       topo_seed: int = 0):
    """Campaign-scale scheme factory.

    Maps the fat-tree degree ``k`` onto a comparably sized instance of
    each backend, so one campaign knob drives all three:

    * ``fattree``  — returns ``None`` (the built-in dynamic fat tree);
    * ``jellyfish`` — ``k²`` switches in a ``(k-1)``-regular seeded RRG,
      ``hosts_per_edge`` hosts each, one spare host port for migration;
    * ``twolayer`` — ``k`` leaves × ``k/2`` spines, ``hosts_per_edge``
      hosts per leaf, one spare host port.

    ``topo_seed`` only matters for jellyfish (the RRG draw); passing the
    scenario seed makes every campaign scenario's graph replayable.
    """
    if backend == "fattree":
        return None
    if backend == "jellyfish":
        from repro.topology.jellyfish import build_jellyfish

        tree = build_jellyfish(k * k, k - 1, hosts_per_switch=hosts_per_edge,
                               seed=topo_seed, spare_host_ports=1)
        return JellyfishScheme(tree)
    if backend == "twolayer":
        from repro.topology.twolayer import build_twolayer

        tree = build_twolayer(leaves=k, spines=max(2, k // 2),
                              hosts_per_leaf=hosts_per_edge,
                              spare_host_ports=1)
        return TwoLayerFatTreeScheme(tree)
    from repro.errors import TopologyError

    raise TopologyError(
        f"unknown topology backend {backend!r}; expected one of {BACKEND_NAMES}")


class JellyfishScheme(TopologyScheme):
    """Jellyfish: random regular ToR graph, shortest-path-DAG ECMP.

    Every switch is an edge switch; its PMAC locator is
    ``pod = switch index``, ``position = 0``, so the existing 24-bit
    position prefix doubles as a per-ToR locator prefix and PMAC
    allocation/rewriting work unchanged.

    Installed routing is the *shortest-path DAG*: for each destination
    prefix a ``route:`` entry ECMP-hashes over exactly the neighbors
    strictly closer (in the static structure) to the destination. Every
    hop strictly decreases the distance, so forwarding is loop-free by
    construction — the Jellyfish analogue of up*-down*'s monotone
    descent argument. Under faults the fabric manager re-derives each
    (switch, destination) next-hop set on the alive graph and pushes an
    override exactly where it differs from the static DAG; non-minimal
    k-shortest paths appear only in :meth:`enumerate_paths` (the
    diversity oracle), never in installed tables.
    """

    name = "jellyfish"
    #: The "pod" here is a flat ToR index, not a pod: it has no
    #: locality the by-pod partition could exploit, and it wraps at the
    #: IP octet for large graphs — hash the full IP instead.
    pod_ip_plan = False

    def __init__(self, tree: FatTree) -> None:
        super().__init__(tree)
        self._host_ports = _wired_host_ports(tree)
        base = min(min(w.port_a, w.port_b) for w in tree.switch_wires)
        self._capacity = set(range(base))
        #: switch name -> PMAC locator (== index; build_jellyfish caps
        #: the switch count below the pod field's I/G-bit ceiling).
        self.locator = {node: i for i, node in enumerate(tree.edge_names)}
        self._dist = dict(nx.all_pairs_shortest_path_length(self._graph))
        #: (src name, dst name) -> static next-hop neighbor names.
        self._next_hops: dict[tuple[str, str], tuple[str, ...]] = {}
        for src in tree.edge_names:
            for dst in tree.edge_names:
                if src == dst:
                    continue
                here = self._dist[src][dst]
                self._next_hops[(src, dst)] = tuple(sorted(
                    nbr for nbr in self._graph.neighbors(src)
                    if self._dist[nbr][dst] == here - 1))

    def rewire(self, tree: FatTree) -> None:
        """Adopt an expanded structure in place (live expansion).

        Every consumer — agents resolving :meth:`route_entries`, the
        fabric manager computing overrides, the oracle's reachability
        checks — holds a reference to *this* scheme object, so
        recomputing the derived state in place (graph, locators,
        distance table, next-hop DAG) repoints them all at once.
        Existing switches keep their locators: :func:`expand_jellyfish`
        appends the new switch to ``edge_names``, and locators are
        enumeration order.
        """
        JellyfishScheme.__init__(self, tree)

    # -- locator assignment -------------------------------------------

    def static_locations(self) -> dict[str, StaticLocation]:
        return {
            node: StaticLocation(
                SwitchLevel.EDGE, pod=self.locator[node], position=0,
                host_ports=self._host_ports.get(node, frozenset()))
            for node in self.tree.edge_names
        }

    def converged(self, fabric) -> bool:
        return self._all_neighbors_heard(fabric)

    # -- route resolution ----------------------------------------------

    def route_entries(self, agent) -> list[tuple]:
        from repro.portland import forwarding as fwd

        me = agent.switch.name
        live_port: dict[str, int] = {}
        for port, info in agent.ldp.neighbors.items():
            if info.switch_id in agent.fm_blocked_neighbors:
                continue
            nbr = self.name_by_id.get(info.switch_id)
            if nbr is not None:
                live_port[nbr] = port
        specs = []
        for dst in self.tree.edge_names:
            if dst == me:
                continue
            ports = tuple(sorted(
                live_port[nbr] for nbr in self._next_hops[(me, dst)]
                if nbr in live_port))
            specs.append(fwd.route_entry(self.locator[dst], 0, ports))
        return specs

    def override_candidate_ports(self, agent) -> list[int]:
        return [port for port, info in sorted(agent.ldp.neighbors.items())
                if info.switch_id not in agent.fm_blocked_neighbors]

    # -- fault policy --------------------------------------------------

    def compute_overrides(self, view: FabricView) -> faults.Overrides:
        overrides: faults.Overrides = {}
        if not view.failed:
            return overrides
        for dst in self.tree.edge_names:
            dst_id = self.id_by_name[dst]
            if dst_id not in view.switches:
                continue
            alive_dist = self._alive_distances(view, dst_id)
            value, bits = position_prefix(self.locator[dst], 0)
            prefix = (value.value, bits)
            for src in self.tree.edge_names:
                if src == dst:
                    continue
                src_id = self.id_by_name[src]
                if src_id not in view.switches:
                    continue
                phys = set(view.neighbors_of(src_id).values())
                live = {nbr for nbr in phys if view.alive(src_id, nbr)}
                here = alive_dist.get(src_id)
                if here is None:
                    allowed: set[int] = set()
                else:
                    allowed = {nbr for nbr in live
                               if alive_dist.get(nbr, here) < here}
                static_live = {
                    self.id_by_name[nbr]
                    for nbr in self._next_hops[(src, dst)]
                } & live
                if allowed == static_live:
                    continue  # local pruning of dead links suffices
                overrides.setdefault(src_id, {})[prefix] = phys - allowed
        return overrides

    # -- path oracle ---------------------------------------------------

    def edge_reachable(self, view: FabricView, src_edge: int,
                       dst_edge: int) -> bool:
        if src_edge == dst_edge:
            return True
        return src_edge in self._alive_distances(view, dst_edge)

    def avoid_viable(self, view: FabricView, agent, neighbor_id: int,
                     dst_edge: int) -> bool:
        # An avoided neighbor is wrongly forbidden iff it is on the
        # alive shortest-path DAG toward the destination.
        alive_dist = self._alive_distances(view, dst_edge)
        here = alive_dist.get(agent.switch_id)
        there = alive_dist.get(neighbor_id)
        return here is not None and there is not None and there < here

    # -- campaign support ----------------------------------------------

    def fault_candidate_links(self) -> list[tuple[str, str]]:
        # Every switch-switch link is fair game; the edge-agg/agg-core
        # taxonomy of :func:`switch_link_names` has no meaning here.
        return sorted((wire.node_a, wire.node_b)
                      for wire in self.tree.switch_wires)

    def host_port_capacity(self, edge_name: str) -> set[int]:
        return set(self._capacity)
