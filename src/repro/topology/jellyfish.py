"""Jellyfish topologies (Singla et al., NSDI'12): seeded random regular
graphs of top-of-rack switches, each also hosting servers.

Jellyfish drops the rigid fat-tree wiring in favour of a degree-``r``
random regular graph (RRG) over the switch ports left after host
attachment. The payoff the paper measures — and our benchmarks echo —
is incremental expandability (add a switch by rewiring a handful of
links) and higher path diversity at equal cost.

This module is pure structure, like :mod:`repro.topology.fattree`: it
emits the same :class:`FatTree` container (every switch listed as an
"edge", because every Jellyfish switch terminates hosts) so the generic
fabric builder can instantiate it unchanged. Routing intelligence lives
in :class:`repro.topology.scheme.JellyfishScheme`.

Port layout per switch ``jelly-i``::

    [0, hosts_per_switch)                      wired host ports
    [hosts_per_switch, +spare_host_ports)      unwired (migration targets)
    [base, base + degree)                      RRG links, base = hosts+spare
"""

from __future__ import annotations

import random

import networkx as nx

from repro.errors import TopologyError
from repro.topology.fattree import FatTree, HostSpec, WireSpec, host_ip, host_mac

#: Locators map 1:1 onto the PMAC pod field, which is capped at 8 data
#: bits before the multicast (I/G) bit position — and onto the second
#: host IP octet. 256 switches is plenty for simulation.
MAX_SWITCHES = 256


def jellyfish_name(index: int) -> str:
    return f"jelly-{index}"


def random_regular_connected(degree: int, num_switches: int, seed: int,
                             attempts: int = 64) -> "nx.Graph":
    """A connected random ``degree``-regular graph on ``num_switches``
    integer nodes, deterministic in ``seed`` (disconnected draws retry
    with ``seed + i``, so the retry chain is deterministic too)."""
    if not 2 <= degree < num_switches:
        raise TopologyError(
            f"jellyfish degree must be in [2, {num_switches - 1}], got {degree}")
    if (degree * num_switches) % 2:
        raise TopologyError("degree * num_switches must be even")
    for i in range(attempts):
        graph = nx.random_regular_graph(degree, num_switches, seed=seed + i)
        if nx.is_connected(graph):
            return graph
    raise TopologyError(  # pragma: no cover - RRGs are a.a.s. connected
        f"no connected {degree}-regular graph in {attempts} attempts")


def expand_regular_graph(graph: "nx.Graph", new_node, seed: int = 0) -> "nx.Graph":
    """Jellyfish incremental expansion (Singla §3): splice one new node
    into an ``r``-regular graph, preserving regularity.

    ``r/2`` existing edges with pairwise-distinct endpoints are removed
    and each endpoint rewired to the new node, giving it exactly ``r``
    links while every old node keeps its degree. Requires even ``r``
    (odd ``r`` cannot keep regularity with a single added node).
    """
    degrees = {d for _n, d in graph.degree()}
    if len(degrees) != 1:
        raise TopologyError("expansion requires a regular graph")
    degree = degrees.pop()
    if degree % 2:
        raise TopologyError("expansion requires an even degree")
    if new_node in graph:
        raise TopologyError(f"node {new_node!r} already present")
    rng = random.Random(seed)
    expanded = graph.copy()
    expanded.add_node(new_node)
    edges = sorted(tuple(sorted(e)) for e in graph.edges())
    rng.shuffle(edges)
    chosen: list[tuple] = []
    used: set = set()
    for a, b in edges:
        if a in used or b in used:
            continue
        chosen.append((a, b))
        used.update((a, b))
        if len(chosen) == degree // 2:
            break
    if len(chosen) < degree // 2:
        raise TopologyError("graph too small to splice a node in")
    for a, b in chosen:
        expanded.remove_edge(a, b)
        expanded.add_edge(a, new_node)
        expanded.add_edge(b, new_node)
    return expanded


def _pack(graph: "nx.Graph", hosts_per_switch: int,
          spare_host_ports: int) -> FatTree:
    """Materialize an integer-node switch graph as a FatTree container."""
    num_switches = graph.number_of_nodes()
    degree = max(d for _n, d in graph.degree())
    base = hosts_per_switch + spare_host_ports
    tree = FatTree(k=base + degree)
    tree.edge_names.extend(jellyfish_name(i) for i in range(num_switches))

    for i in range(num_switches):
        switch = jellyfish_name(i)
        for h in range(hosts_per_switch):
            name = f"host-j{i}-{h}"
            tree.hosts.append(HostSpec(
                name=name, pod=i, edge=0, index=h,
                mac=host_mac(i, 0, h), ip=host_ip(i, 0, h),
                edge_switch=switch, edge_port=h,
            ))
            tree.host_wires.append(WireSpec(name, 0, switch, h))

    next_port = {i: base for i in graph.nodes()}
    for a, b in sorted(tuple(sorted(e)) for e in graph.edges()):
        tree.switch_wires.append(WireSpec(
            jellyfish_name(a), next_port[a], jellyfish_name(b), next_port[b]))
        next_port[a] += 1
        next_port[b] += 1
    return tree


def build_jellyfish(num_switches: int, degree: int, hosts_per_switch: int = 1,
                    seed: int = 0, spare_host_ports: int = 0) -> FatTree:
    """Construct a Jellyfish structure: ``num_switches`` ToR switches in
    a connected seeded RRG of switch-switch degree ``degree``, each with
    ``hosts_per_switch`` hosts (plus optional unwired spare host ports
    for VM-migration targets)."""
    if num_switches > MAX_SWITCHES:
        raise TopologyError(
            f"jellyfish supports at most {MAX_SWITCHES} switches")
    if num_switches < 3:
        raise TopologyError("jellyfish needs at least 3 switches")
    if hosts_per_switch < 1:
        raise TopologyError("hosts_per_switch must be >= 1")
    if spare_host_ports < 0:
        raise TopologyError("spare_host_ports must be >= 0")
    graph = random_regular_connected(degree, num_switches, seed)
    return _pack(graph, hosts_per_switch, spare_host_ports)


def expand_jellyfish(tree: FatTree, seed: int = 0) -> FatTree:
    """A new Jellyfish structure with one more switch, grown from
    ``tree`` by edge rewiring. Host/spare port counts are inferred from
    the input's port layout."""
    num_switches = len(tree.edge_names)
    if num_switches >= MAX_SWITCHES:
        raise TopologyError("jellyfish at capacity")
    hosts_per_switch = len(tree.host_wires) // num_switches
    base = min(min(w.port_a, w.port_b) for w in tree.switch_wires)
    expanded = expand_regular_graph(jellyfish_graph(tree), num_switches,
                                    seed=seed)
    return _pack(expanded, hosts_per_switch, base - hosts_per_switch)


def jellyfish_graph(tree: FatTree) -> "nx.Graph":
    """The integer-node switch graph of a Jellyfish structure."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(tree.edge_names)))
    index = {name: i for i, name in enumerate(tree.edge_names)}
    for wire in tree.switch_wires:
        graph.add_edge(index[wire.node_a], index[wire.node_b])
    return graph
