"""Topology structures and fabric instantiation."""

from repro.topology.builder import (
    LinkParams,
    PortlandFabric,
    build_portland_fabric,
)
from repro.topology.fattree import (
    FatTree,
    HostSpec,
    WireSpec,
    build_fat_tree,
    host_ip,
    host_mac,
)

__all__ = [
    "FatTree",
    "HostSpec",
    "LinkParams",
    "PortlandFabric",
    "WireSpec",
    "build_fat_tree",
    "build_portland_fabric",
    "host_ip",
    "host_mac",
]

from repro.topology.baselines import L2Fabric, L3Fabric, build_l2_fabric, build_l3_fabric
from repro.topology.multirooted import build_multirooted_tree
from repro.topology.validate import bisection_paths, to_graph, validate_tree

__all__ += [
    "L2Fabric",
    "L3Fabric",
    "bisection_paths",
    "build_l2_fabric",
    "build_l3_fabric",
    "build_multirooted_tree",
    "to_graph",
    "validate_tree",
]

from repro.topology.expansion import JellyfishExpansion, expand_jellyfish_live
from repro.topology.jellyfish import build_jellyfish, expand_jellyfish
from repro.topology.scheme import (
    BACKEND_NAMES,
    FatTreeScheme,
    JellyfishScheme,
    TopologyScheme,
    TwoLayerFatTreeScheme,
    scheme_for_backend,
)
from repro.topology.twolayer import (
    TwoLayerDesign,
    build_designed_twolayer,
    build_twolayer,
    design_twolayer,
)

__all__ += [
    "BACKEND_NAMES",
    "FatTreeScheme",
    "JellyfishExpansion",
    "JellyfishScheme",
    "TopologyScheme",
    "TwoLayerDesign",
    "TwoLayerFatTreeScheme",
    "build_designed_twolayer",
    "build_jellyfish",
    "build_twolayer",
    "design_twolayer",
    "expand_jellyfish",
    "expand_jellyfish_live",
    "scheme_for_backend",
]
