"""Live Jellyfish expansion: splice a new ToR into a *running* fabric.

:func:`repro.topology.jellyfish.expand_jellyfish` grows the static
structure; this module performs the same Singla §3 rewiring on a fabric
that is already simulating — the property the Jellyfish paper sells as
incremental expandability. The physical sequence mirrors what a cabling
crew would do:

1. Pick ``r/2`` pairwise-disjoint existing links and *unplug* them
   (:meth:`Link.detach` — carrier drops, LDP prunes the neighbor,
   compiled paths through the link are invalidated, the fabric manager
   learns of the loss).
2. Rack the new switch and wire each freed port to it, preserving every
   surviving link's port numbering (unlike ``_pack``, which renumbers).
3. Update the shared :class:`JellyfishScheme` in place
   (:meth:`~repro.topology.scheme.JellyfishScheme.rewire`) — the planned
   expansion's new routing tables — and refresh every agent's entries.
4. Start the new switch's agent (preseeded, like any generated design)
   and connect it to the control network.
5. After the edge-adoption grace period, the new hosts announce
   themselves with gratuitous ARPs and register with the fabric manager.

Between steps 1 and the refreshes the fabric is transiently degraded
exactly as it would be for real — frames in flight on spliced links are
lost, routes re-converge as LDMs from the new switch are heard — and
the invariant oracle is expected to come back clean once settled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.host.host import Host
from repro.net.link import Link
from repro.portland.agent import PortlandAgent
from repro.portland.switch import PortlandSwitch
from repro.topology.builder import LinkParams, PortlandFabric
from repro.topology.fattree import (
    FatTree,
    HostSpec,
    WireSpec,
    host_ip,
    host_mac,
)
from repro.topology.jellyfish import (
    MAX_SWITCHES,
    expand_regular_graph,
    jellyfish_graph,
    jellyfish_name,
)


@dataclass
class JellyfishExpansion:
    """What one live expansion did to the fabric."""

    new_switch: str
    #: Switch-switch links unplugged to free ports ((name, name) pairs,
    #: each sorted) — gone from ``fabric.links``; campaigns must drop
    #: them from their fault bookkeeping.
    spliced: list[tuple[str, str]] = field(default_factory=list)
    #: Names of the hosts racked with the new switch.
    hosts: list[str] = field(default_factory=list)
    #: When the new hosts announce themselves (gratuitous ARP).
    announce_at: float = 0.0


def expand_jellyfish_live(fabric: PortlandFabric, seed: int = 0,
                          link_params: LinkParams | None = None,
                          ) -> JellyfishExpansion:
    """Splice one new ToR switch (plus its hosts) into a running
    Jellyfish fabric. Raises :class:`TopologyError` if the fabric is not
    a Jellyfish or its degree is odd (single-node splices cannot keep an
    odd-degree graph regular)."""
    scheme = fabric.scheme
    if scheme is None or getattr(scheme, "name", None) != "jellyfish":
        raise TopologyError("live expansion requires a Jellyfish fabric")
    tree = fabric.tree
    num_switches = len(tree.edge_names)
    if num_switches >= MAX_SWITCHES:
        raise TopologyError("jellyfish at capacity")
    sim = fabric.sim
    config = fabric.config
    params = link_params or LinkParams()

    graph = jellyfish_graph(tree)
    new_index = num_switches
    new_name = jellyfish_name(new_index)
    # Raises on odd degree or a graph too small to splice into.
    expanded = expand_regular_graph(graph, new_index, seed=seed)
    removed = ({frozenset(edge) for edge in graph.edges()}
               - {frozenset(edge) for edge in expanded.edges()})

    index_of = {name: i for i, name in enumerate(tree.edge_names)}
    kept_wires: list[WireSpec] = []
    spliced_wires: list[WireSpec] = []
    for wire in tree.switch_wires:
        key = frozenset((index_of[wire.node_a], index_of[wire.node_b]))
        (spliced_wires if key in removed else kept_wires).append(wire)
    degree = 2 * len(spliced_wires)
    base = min(min(w.port_a, w.port_b) for w in tree.switch_wires)
    hosts_per_switch = len(tree.host_wires) // num_switches

    # Rack the new switch (agent not started yet; ports must exist
    # before links are plugged in).
    switch = PortlandSwitch(
        sim, new_name, max(tree.k, base + degree),
        agent_delay_s=config.agent_delay_s,
        decision_cache_entries=config.decision_cache_entries)
    switch.path_cache = fabric.path_cache
    agent = PortlandAgent(switch, config, scheme=scheme)
    switch.attach_agent(agent)
    fabric.switches[new_name] = switch
    fabric.agents[new_name] = agent

    # Unplug the spliced links. detach() drops carrier, so neighbors
    # prune the link, compiled paths through it die, and the FM hears.
    result = JellyfishExpansion(new_switch=new_name)
    freed: list[tuple[str, int]] = []
    for wire in sorted(spliced_wires,
                       key=lambda w: (w.node_a, w.port_a)):
        key = ((wire.node_a, wire.node_b)
               if (wire.node_a, wire.node_b) in fabric.links
               else (wire.node_b, wire.node_a))
        fabric.links.pop(key).detach()
        result.spliced.append(tuple(sorted((wire.node_a, wire.node_b))))
        freed.append((wire.node_a, wire.port_a))
        freed.append((wire.node_b, wire.port_b))

    # Wire each freed port to the new switch.
    new_wires: list[WireSpec] = []
    for i, (node, port) in enumerate(freed):
        wire = WireSpec(new_name, base + i, node, port)
        new_wires.append(wire)
        fabric.links[(new_name, node)] = Link(
            sim,
            switch.port(base + i),
            fabric.switches[node].port(port),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.carrier_detect,
        )

    # Rack the new hosts.
    new_specs: list[HostSpec] = []
    new_host_wires: list[WireSpec] = []
    for h in range(hosts_per_switch):
        spec = HostSpec(
            name=f"host-j{new_index}-{h}", pod=new_index, edge=0, index=h,
            mac=host_mac(new_index, 0, h), ip=host_ip(new_index, 0, h),
            edge_switch=new_name, edge_port=h)
        new_specs.append(spec)
        new_host_wires.append(WireSpec(spec.name, 0, new_name, h))
        host = Host(sim, spec.name, spec.mac, spec.ip)
        fabric.hosts[spec.name] = host
        fabric.links[(spec.name, new_name)] = Link(
            sim, host.port(0), switch.port(h),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.host_carrier_detect,
        )
        result.hosts.append(spec.name)

    # The expanded structure, with surviving links keeping their ports.
    fabric.tree = FatTree(
        k=tree.k,
        edge_names=tree.edge_names + [new_name],
        agg_names=list(tree.agg_names),
        core_names=list(tree.core_names),
        hosts=list(tree.hosts) + new_specs,
        switch_wires=kept_wires + new_wires,
        host_wires=list(tree.host_wires) + new_host_wires,
    )
    scheme.rewire(fabric.tree)

    # Bring the new switch up exactly like the builder would: preseed
    # its location, connect it to the control network, start LDP.
    location = scheme.static_locations()[new_name]
    agent.ldp.preseed(location.level, pod=location.pod,
                      position=location.position,
                      host_ports=tuple(location.host_ports))
    fabric.control.connect(agent)
    agent.start()

    # Distances changed fabric-wide (the planned expansion ships new
    # tables everywhere); agents also re-refresh on their own as the new
    # switch's LDMs are heard and spliced neighbors are pruned.
    for name, other in fabric.agents.items():
        if other is not agent:
            other._refresh_entries()

    # New hosts announce after the edge-adoption grace, as a migrated
    # VM would (their ports are preseeded, but the agent must have its
    # base entries and the FM link up before registration can land).
    grace = (config.edge_detect_periods * config.ldm_period_s
             + 2 * config.ldm_period_s)
    result.announce_at = sim.now + grace
    for host_name in result.hosts:
        sim.schedule(grace, fabric.hosts[host_name].gratuitous_arp)
    sim.trace.emit(sim.now, "topology.expand", new_name,
                   spliced=len(result.spliced), hosts=len(result.hosts))
    return result
