"""Generic multi-rooted trees — PortLand's claimed generality.

The paper's mechanisms (LDP, PMACs, fault handling) are defined for any
multi-rooted tree, not just the canonical fat tree. This builder makes
irregular instances: arbitrary numbers of pods, edge/aggregation
switches per pod, cores per group, and hosts per edge. The fat tree is
the special case ``pods = k, edge = agg = cores_per_group = hosts = k/2``.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.fattree import FatTree, HostSpec, WireSpec, host_ip, host_mac


def build_multirooted_tree(
    num_pods: int,
    edges_per_pod: int,
    aggs_per_pod: int,
    cores_per_group: int,
    hosts_per_edge: int,
) -> FatTree:
    """Construct an irregular multi-rooted tree.

    Wiring: every edge switch connects to every aggregation switch in its
    pod; aggregation switch ``a`` connects to core group ``a`` (of size
    ``cores_per_group``); each core in group ``a`` connects to aggregation
    index ``a`` of every pod. Total cores: ``aggs_per_pod ×
    cores_per_group``.
    """
    if min(num_pods, edges_per_pod, aggs_per_pod,
           cores_per_group, hosts_per_edge) < 1:
        raise TopologyError("all multirooted-tree dimensions must be >= 1")
    if num_pods < 2:
        raise TopologyError("need at least 2 pods for a meaningful fabric")

    # ``k`` records the largest radix (used as a default port count).
    k = max(hosts_per_edge + aggs_per_pod,
            edges_per_pod + cores_per_group,
            num_pods)
    tree = FatTree(k=k)

    for pod in range(num_pods):
        for e in range(edges_per_pod):
            tree.edge_names.append(f"edge-p{pod}-s{e}")
        for a in range(aggs_per_pod):
            tree.agg_names.append(f"agg-p{pod}-s{a}")
    num_cores = aggs_per_pod * cores_per_group
    for c in range(num_cores):
        tree.core_names.append(f"core-{c}")

    # Hosts on edge ports [0, hosts_per_edge); uplinks after them.
    for pod in range(num_pods):
        for e in range(edges_per_pod):
            edge = f"edge-p{pod}-s{e}"
            for i in range(hosts_per_edge):
                name = f"host-p{pod}-e{e}-{i}"
                tree.hosts.append(HostSpec(
                    name=name, pod=pod, edge=e, index=i,
                    mac=host_mac(pod, e, i), ip=host_ip(pod, e, i),
                    edge_switch=edge, edge_port=i,
                ))
                tree.host_wires.append(WireSpec(name, 0, edge, i))

    for pod in range(num_pods):
        for e in range(edges_per_pod):
            for a in range(aggs_per_pod):
                tree.switch_wires.append(WireSpec(
                    f"edge-p{pod}-s{e}", hosts_per_edge + a,
                    f"agg-p{pod}-s{a}", e,
                ))
        for a in range(aggs_per_pod):
            for j in range(cores_per_group):
                tree.switch_wires.append(WireSpec(
                    f"agg-p{pod}-s{a}", edges_per_pod + j,
                    f"core-{a * cores_per_group + j}", pod,
                ))
    return tree
