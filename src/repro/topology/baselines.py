"""Baseline fabrics on the same fat tree: flat L2 (+STP) and L3 ECMP.

These are the "existing techniques" columns of the paper's Table 1 and
the convergence baselines: identical topology and hosts, different
switch implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.host.host import Host
from repro.net.link import Link
from repro.sim.simulator import Simulator
from repro.switching.l3router import L3Router
from repro.switching.learning import LearningSwitch
from repro.topology.builder import LinkParams
from repro.topology.fattree import FatTree, build_fat_tree


@dataclass
class L2Fabric:
    """Flat learning-switch fabric with spanning tree."""

    sim: Simulator
    tree: FatTree
    switches: dict[str, LearningSwitch] = field(default_factory=dict)
    hosts: dict[str, Host] = field(default_factory=dict)
    links: dict[tuple[str, str], Link] = field(default_factory=dict)

    def host_list(self) -> list[Host]:
        return [self.hosts[spec.name] for spec in self.tree.hosts]

    def link_between(self, a: str, b: str) -> Link:
        link = self.links.get((a, b)) or self.links.get((b, a))
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def stp_converged(self) -> bool:
        """True once no port is still in listening/learning transition."""
        from repro.switching.stp import PortState

        for switch in self.switches.values():
            if switch.stp is None:
                continue
            for port in switch.ports:
                if port.link is None:
                    continue
                if switch.stp.port_state(port.index) in (PortState.LISTENING,
                                                         PortState.LEARNING):
                    return False
        return True

    def run_until_stp_converged(self, timeout_s: float = 120.0,
                                step_s: float = 1.0) -> float:
        """Run until the spanning tree settles. Returns the time."""
        deadline = self.sim.now + timeout_s
        # Let the first hellos fire before testing convergence.
        self.sim.run(until=self.sim.now + step_s)
        while self.sim.now < deadline:
            if self.stp_converged():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if self.stp_converged():
            return self.sim.now
        raise TopologyError("spanning tree did not converge")

    def total_mac_entries(self) -> int:
        """Sum of live MAC-table entries fabric-wide (Table 1 metric)."""
        return sum(s.mac_table_size() for s in self.switches.values())


def build_l2_fabric(
    sim: Simulator,
    k: int = 4,
    link_params: LinkParams | None = None,
    tree: FatTree | None = None,
    enable_stp: bool = True,
    stp_kwargs: dict | None = None,
) -> L2Fabric:
    """Build a flat-L2 fat tree of learning switches (+ STP)."""
    params = link_params or LinkParams()
    tree = tree or build_fat_tree(k)
    fabric = L2Fabric(sim=sim, tree=tree)

    for name in tree.edge_names + tree.agg_names + tree.core_names:
        fabric.switches[name] = LearningSwitch(sim, name, tree.k)
    for spec in tree.hosts:
        fabric.hosts[spec.name] = Host(sim, spec.name, spec.mac, spec.ip)

    _wire(sim, fabric.links, fabric.switches, fabric.hosts, tree, params)

    if enable_stp:
        for switch in fabric.switches.values():
            switch.enable_stp(**(stp_kwargs or {}))
    return fabric


@dataclass
class L3Fabric:
    """Link-state ECMP router fabric with per-edge subnets."""

    sim: Simulator
    tree: FatTree
    routers: dict[str, L3Router] = field(default_factory=dict)
    hosts: dict[str, Host] = field(default_factory=dict)
    links: dict[tuple[str, str], Link] = field(default_factory=dict)

    def host_list(self) -> list[Host]:
        return [self.hosts[spec.name] for spec in self.tree.hosts]

    def link_between(self, a: str, b: str) -> Link:
        link = self.links.get((a, b)) or self.links.get((b, a))
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def start(self) -> None:
        """Bring all router control planes up."""
        for router in self.routers.values():
            router.start()

    def converged(self) -> bool:
        """Every router has an LSDB entry for every other router."""
        total = len(self.routers)
        return all(len(r.lsdb) >= total for r in self.routers.values())

    def run_until_converged(self, timeout_s: float = 30.0,
                            step_s: float = 0.25) -> float:
        """Run until routing converges. Returns the time."""
        deadline = self.sim.now + timeout_s
        while self.sim.now < deadline:
            if self.converged():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step_s, deadline))
        if self.converged():
            return self.sim.now
        raise TopologyError("link-state routing did not converge")

    def total_config_lines(self) -> int:
        """Operator configuration burden (Table 1 metric)."""
        return sum(r.config_lines for r in self.routers.values())

    def total_routes(self) -> int:
        """Installed route entries fabric-wide (Table 1 metric)."""
        return sum(r.route_table_size() for r in self.routers.values())


def build_l3_fabric(
    sim: Simulator,
    k: int = 4,
    link_params: LinkParams | None = None,
    tree: FatTree | None = None,
    hello_s: float = 1.0,
    dead_s: float = 3.0,
    spf_delay_s: float = 0.050,
) -> L3Fabric:
    """Build an L3 ECMP fat tree: one /24 subnet per edge router."""
    params = link_params or LinkParams()
    tree = tree or build_fat_tree(k)
    fabric = L3Fabric(sim=sim, tree=tree)

    names = tree.edge_names + tree.agg_names + tree.core_names
    for rid, name in enumerate(names, start=1):
        fabric.routers[name] = L3Router(sim, name, tree.k, router_id=rid,
                                        hello_s=hello_s, dead_s=dead_s,
                                        spf_delay_s=spf_delay_s)
    for spec in tree.hosts:
        fabric.hosts[spec.name] = Host(sim, spec.name, spec.mac, spec.ip)

    _wire(sim, fabric.links, fabric.routers, fabric.hosts, tree, params)

    # Each edge router owns 10.pod.edge.0/24 on its host ports — the
    # manual configuration step the paper's Table 1 charges L3 with.
    half = tree.k // 2
    for pod in range(tree.k):
        for e in range(half):
            router = fabric.routers[tree.edge_name(pod, e)]
            network = (10 << 24) | (pod << 16) | (e << 8)
            for port in range(half):
                router.configure_subnet(port, network, 24)
    return fabric


def _wire(sim, links, switches, hosts, tree: FatTree,
          params: LinkParams) -> None:
    for wire in tree.switch_wires:
        links[(wire.node_a, wire.node_b)] = Link(
            sim,
            switches[wire.node_a].port(wire.port_a),
            switches[wire.node_b].port(wire.port_b),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.carrier_detect,
        )
    for wire in tree.host_wires:
        links[(wire.node_a, wire.node_b)] = Link(
            sim,
            hosts[wire.node_a].port(wire.port_a),
            switches[wire.node_b].port(wire.port_b),
            rate_bps=params.rate_bps,
            delay_s=params.delay_s,
            queue_bytes=params.queue_bytes,
            carrier_detect=params.host_carrier_detect,
        )
