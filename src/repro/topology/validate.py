"""Wiring validation and graph export for topology structures."""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.fattree import FatTree


def validate_tree(tree: FatTree) -> None:
    """Check structural invariants of a (fat or multi-rooted) tree.

    Raises :class:`TopologyError` on: duplicate port usage, dangling
    endpoints, disconnected fabric, or hosts wired to non-edge switches.
    """
    switch_names = set(tree.edge_names + tree.agg_names + tree.core_names)
    if len(switch_names) != (len(tree.edge_names) + len(tree.agg_names)
                             + len(tree.core_names)):
        raise TopologyError("duplicate switch names")

    used_ports: set[tuple[str, int]] = set()
    for wire in tree.switch_wires + tree.host_wires:
        for node, port in ((wire.node_a, wire.port_a), (wire.node_b, wire.port_b)):
            if (node, port) in used_ports:
                raise TopologyError(f"port {node}[{port}] wired twice")
            used_ports.add((node, port))

    host_names = {h.name for h in tree.hosts}
    edge_names = set(tree.edge_names)
    for wire in tree.host_wires:
        if wire.node_a not in host_names:
            raise TopologyError(f"host wire from unknown host {wire.node_a!r}")
        if wire.node_b not in edge_names:
            raise TopologyError(
                f"host {wire.node_a!r} wired to non-edge {wire.node_b!r}")
    for wire in tree.switch_wires:
        for node in (wire.node_a, wire.node_b):
            if node not in switch_names:
                raise TopologyError(f"switch wire to unknown node {node!r}")

    graph = to_graph(tree, include_hosts=True)
    if graph.number_of_nodes() and not nx.is_connected(graph):
        raise TopologyError("topology is not connected")


def to_graph(tree: FatTree, include_hosts: bool = False) -> "nx.Graph":
    """Export the structure as a networkx graph (for analysis/tests)."""
    graph = nx.Graph()
    for name in tree.edge_names:
        graph.add_node(name, level="edge")
    for name in tree.agg_names:
        graph.add_node(name, level="aggregation")
    for name in tree.core_names:
        graph.add_node(name, level="core")
    for wire in tree.switch_wires:
        graph.add_edge(wire.node_a, wire.node_b)
    if include_hosts:
        for host in tree.hosts:
            graph.add_node(host.name, level="host")
        for wire in tree.host_wires:
            graph.add_edge(wire.node_a, wire.node_b)
    return graph


def bisection_paths(tree: FatTree) -> int:
    """Count of edge-disjoint shortest paths between two sample pods —
    a quick structural sanity metric used in tests."""
    graph = to_graph(tree)
    if len(tree.edge_names) < 2:
        return 0
    src = tree.edge_names[0]
    dst = tree.edge_names[-1]
    return nx.edge_connectivity(graph, src, dst)
