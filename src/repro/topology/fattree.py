"""The k-ary fat-tree structure (Al-Fares et al.), PortLand's canonical
topology.

This module is pure structure — names, coordinates, and the wiring list
— independent of which switch implementation gets instantiated on it.

For even ``k``: ``k`` pods, each with ``k/2`` edge and ``k/2``
aggregation switches; ``(k/2)²`` cores; ``k³/4`` hosts. Aggregation
switch ``a`` of every pod connects to cores ``a·k/2 … a·k/2 + k/2 − 1``
(its *core group*), which is what makes core index ↔ pod wiring regular.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.net.addresses import IPv4Address, MacAddress


@dataclass(frozen=True)
class HostSpec:
    """One host's place in the fat tree."""

    name: str
    pod: int
    edge: int
    index: int
    mac: MacAddress
    ip: IPv4Address
    #: (edge switch name, edge port it plugs into)
    edge_switch: str
    edge_port: int


@dataclass(frozen=True)
class WireSpec:
    """One physical link: (node_a, port_a) <-> (node_b, port_b)."""

    node_a: str
    port_a: int
    node_b: str
    port_b: int


@dataclass
class FatTree:
    """Structural description of a k-ary fat tree."""

    k: int
    edge_names: list[str] = field(default_factory=list)
    agg_names: list[str] = field(default_factory=list)
    core_names: list[str] = field(default_factory=list)
    hosts: list[HostSpec] = field(default_factory=list)
    switch_wires: list[WireSpec] = field(default_factory=list)
    host_wires: list[WireSpec] = field(default_factory=list)

    @property
    def num_pods(self) -> int:
        return self.k

    @property
    def switches_per_pod(self) -> int:
        return self.k // 2

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def edge_name(self, pod: int, index: int) -> str:
        return f"edge-p{pod}-s{index}"

    def agg_name(self, pod: int, index: int) -> str:
        return f"agg-p{pod}-s{index}"

    def core_name(self, index: int) -> str:
        return f"core-{index}"

    def core_group_of_agg(self, agg_index: int) -> list[int]:
        """Core indices wired to aggregation index ``agg_index``."""
        half = self.k // 2
        return list(range(agg_index * half, (agg_index + 1) * half))

    def hosts_in_pod(self, pod: int) -> list[HostSpec]:
        return [h for h in self.hosts if h.pod == pod]


def host_mac(pod: int, edge: int, index: int) -> MacAddress:
    """The deterministic AMAC for a host: locally administered, unicast."""
    value = (0x02 << 40) | (pod << 16) | (edge << 8) | index
    return MacAddress(value)


def host_ip(pod: int, edge: int, index: int) -> IPv4Address:
    """10.pod.edge.(index+2) — readable and collision-free for k ≤ 255."""
    if pod > 255 or edge > 255 or index > 253:
        raise TopologyError("fat tree too large for the 10.x.y.z host plan")
    return IPv4Address((10 << 24) | (pod << 16) | (edge << 8) | (index + 2))


def build_fat_tree(k: int, hosts_per_edge: int | None = None) -> FatTree:
    """Construct the structural description of a k-ary fat tree.

    ``hosts_per_edge`` defaults to the full k/2; passing fewer leaves
    spare (unwired) host ports on every edge switch — useful as VM
    migration targets.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree k must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if not 1 <= hosts_per_edge <= half:
        raise TopologyError(
            f"hosts_per_edge must be in [1, {half}], got {hosts_per_edge}")
    tree = FatTree(k=k)

    for pod in range(k):
        for s in range(half):
            tree.edge_names.append(tree.edge_name(pod, s))
            tree.agg_names.append(tree.agg_name(pod, s))
    for c in range(half * half):
        tree.core_names.append(tree.core_name(c))

    # Hosts: edge ports 0..half-1 face hosts, half..k-1 face aggregation.
    for pod in range(k):
        for e in range(half):
            edge = tree.edge_name(pod, e)
            for i in range(hosts_per_edge):
                name = f"host-p{pod}-e{e}-{i}"
                tree.hosts.append(HostSpec(
                    name=name, pod=pod, edge=e, index=i,
                    mac=host_mac(pod, e, i), ip=host_ip(pod, e, i),
                    edge_switch=edge, edge_port=i,
                ))
                tree.host_wires.append(WireSpec(name, 0, edge, i))

    # Edge <-> aggregation (full bipartite inside each pod).
    for pod in range(k):
        for e in range(half):
            for a in range(half):
                tree.switch_wires.append(WireSpec(
                    tree.edge_name(pod, e), half + a,
                    tree.agg_name(pod, a), e,
                ))

    # Aggregation <-> core.
    for pod in range(k):
        for a in range(half):
            for j in range(half):
                core_index = a * half + j
                tree.switch_wires.append(WireSpec(
                    tree.agg_name(pod, a), half + j,
                    tree.core_name(core_index), pod,
                ))
    return tree
