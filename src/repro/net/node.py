"""The base class for everything attached to the data-plane network."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.net.ethernet import EthernetFrame
from repro.net.link import Port
from repro.sim.simulator import Simulator


class Node:
    """A device with named identity and numbered ports.

    Subclasses (hosts, switches, the fabric manager) override
    :meth:`receive` to process frames and may override the port up/down
    hooks to react to carrier changes.
    """

    def __init__(self, sim: Simulator, name: str, num_ports: int) -> None:
        if num_ports < 0:
            raise TopologyError(f"negative port count for {name!r}")
        self.sim = sim
        self.name = name
        self.ports: list[Port] = [Port(self, i) for i in range(num_ports)]

    def port(self, index: int) -> Port:
        """The port at ``index``; raises :class:`TopologyError` when absent."""
        if not 0 <= index < len(self.ports):
            raise TopologyError(f"{self.name} has no port {index}")
        return self.ports[index]

    def add_port(self) -> Port:
        """Append one more port (used by incremental topology builders)."""
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def free_port(self) -> Port:
        """First enabled port with no link attached."""
        for port in self.ports:
            if port.link is None and port.enabled:
                return port
        raise TopologyError(f"{self.name} has no free ports")

    def receive(self, frame: EthernetFrame, in_port: Port) -> None:
        """Handle a frame arriving on ``in_port``. Default: drop."""

    def on_port_down(self, port: Port) -> None:
        """Carrier lost on ``port`` (only with link carrier detection)."""

    def on_port_up(self, port: Port) -> None:
        """Carrier restored on ``port``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"
