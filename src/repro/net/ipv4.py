"""A minimal-but-real IPv4 layer: 20-byte header, TTL, protocol demux.

No options or fragmentation — data-center fabrics run with uniform MTUs
and none of the reproduced experiments exercise fragmentation.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.addresses import IPv4Address
from repro.net.checksum import internet_checksum
from repro.net.packet import Packet, encode_payload, payload_length

IPPROTO_ICMP = 1
IPPROTO_IGMP = 2
IPPROTO_TCP = 6
IPPROTO_UDP = 17

IPV4_HEADER_LEN = 20
DEFAULT_TTL = 64

_HEADER = struct.Struct("!BBHHHBBH4s4s")


class IPv4Packet(Packet):
    """An IPv4 packet (no options, DF set, never fragmented)."""

    __slots__ = ("src", "dst", "protocol", "ttl", "ident", "dscp", "payload")

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        protocol: int,
        payload: Packet | bytes | None,
        ttl: int = DEFAULT_TTL,
        ident: int = 0,
        dscp: int = 0,
    ) -> None:
        if not 0 <= protocol <= 0xFF:
            raise CodecError(f"bad IP protocol number: {protocol}")
        if not 0 <= ttl <= 0xFF:
            raise CodecError(f"bad TTL: {ttl}")
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.ttl = ttl
        self.ident = ident & 0xFFFF
        self.dscp = dscp & 0x3F
        self.payload = payload

    def wire_length(self) -> int:
        return IPV4_HEADER_LEN + payload_length(self.payload)

    def encode(self) -> bytes:
        body = encode_payload(self.payload)
        total_length = IPV4_HEADER_LEN + len(body)
        header = _HEADER.pack(
            0x45,  # version 4, IHL 5
            self.dscp << 2,
            total_length,
            self.ident,
            0x4000,  # flags: DF
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Packet":
        """Parse header fields; payload is kept as raw bytes."""
        if len(data) < IPV4_HEADER_LEN:
            raise CodecError(f"IPv4 packet too short: {len(data)} bytes")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            ident,
            _flags_frag,
            ttl,
            protocol,
            _checksum,
            src_raw,
            dst_raw,
        ) = _HEADER.unpack_from(data, 0)
        if version_ihl >> 4 != 4:
            raise CodecError(f"not IPv4 (version={version_ihl >> 4})")
        ihl_bytes = (version_ihl & 0xF) * 4
        if ihl_bytes != IPV4_HEADER_LEN:
            raise CodecError("IPv4 options are not supported")
        if total_length > len(data):
            raise CodecError("IPv4 total length exceeds captured bytes")
        return cls(
            src=IPv4Address.from_bytes(src_raw),
            dst=IPv4Address.from_bytes(dst_raw),
            protocol=protocol,
            payload=data[IPV4_HEADER_LEN:total_length],
            ttl=ttl,
            ident=ident,
            dscp=dscp_ecn >> 2,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IPv4({self.src}->{self.dst} proto={self.protocol} ttl={self.ttl}"
            f" len={self.wire_length()})"
        )
