"""UDP datagrams (RFC 768)."""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.packet import Packet, encode_payload, payload_length

UDP_HEADER_LEN = 8


class UdpDatagram(Packet):
    """A UDP datagram. The checksum is rendered as zero (legal for IPv4)."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port: int, dst_port: int, payload: Packet | bytes | None) -> None:
        for name, port in (("source", src_port), ("destination", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"bad UDP {name} port: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload

    def wire_length(self) -> int:
        return UDP_HEADER_LEN + payload_length(self.payload)

    def encode(self) -> bytes:
        body = encode_payload(self.payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port,
                             UDP_HEADER_LEN + len(body), 0)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        """Parse wire bytes; payload kept raw."""
        if len(data) < UDP_HEADER_LEN:
            raise CodecError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, _checksum = struct.unpack_from("!HHHH", data, 0)
        if length < UDP_HEADER_LEN or length > len(data):
            raise CodecError(f"bad UDP length field: {length}")
        return cls(src_port, dst_port, data[UDP_HEADER_LEN:length])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UDP({self.src_port}->{self.dst_port} len={self.wire_length()})"
