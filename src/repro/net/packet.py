"""Base protocol-data-unit abstractions.

Inside the simulator, packets travel as Python objects (cheap, and they
can carry measurement metadata that has no wire representation). Every
PDU also knows how to render itself to real bytes — byte-accurate sizes
are what make the control-traffic measurements (Fig. 14) honest.
"""

from __future__ import annotations

import abc


class Packet(abc.ABC):
    """A protocol data unit.

    Subclasses must implement :meth:`encode` (exact wire bytes) and
    :meth:`wire_length` (must equal ``len(self.encode())`` — the property
    tests enforce this). ``wire_length`` exists separately because the hot
    forwarding path needs sizes without paying for serialization.
    """

    @abc.abstractmethod
    def encode(self) -> bytes:
        """Render the PDU (including any payload) to wire bytes."""

    @abc.abstractmethod
    def wire_length(self) -> int:
        """Exact encoded length in bytes, without encoding."""

    def copy(self) -> "Packet":
        """A shallow copy, for safe multicast/flood fan-out.

        Headers are duplicated so each branch may be rewritten
        independently (e.g. PMAC rewriting, TTL decrement); payloads are
        shared because the library treats them as immutable once sent.
        """
        import copy as _copy

        return _copy.copy(self)


def payload_length(payload: "Packet | bytes | None") -> int:
    """Wire length of a packet payload field of any accepted type."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return payload.wire_length()


def encode_payload(payload: "Packet | bytes | None") -> bytes:
    """Encode a payload field of any accepted type."""
    if payload is None:
        return b""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return payload.encode()


def coerce(payload: "Packet | bytes | None", cls: type) -> "Packet":
    """Return ``payload`` as an instance of ``cls``.

    Inside the simulator payloads are usually already objects; frames that
    were round-tripped through :meth:`encode`/``decode`` carry raw bytes
    instead, which this helper decodes via ``cls.decode``.
    """
    if isinstance(payload, cls):
        return payload
    if isinstance(payload, (bytes, bytearray)):
        return cls.decode(bytes(payload))
    raise TypeError(f"cannot interpret {type(payload).__name__} as {cls.__name__}")


class AppData(Packet):
    """Opaque application payload with simulation-only metadata.

    Encodes as ``length`` zero bytes. ``flow_id``, ``seq`` and ``sent_at``
    exist only inside the simulator and never reach the wire; measurement
    code uses them to compute loss windows and one-way delays.
    """

    __slots__ = ("length", "flow_id", "seq", "sent_at")

    def __init__(
        self,
        length: int,
        flow_id: str = "",
        seq: int = 0,
        sent_at: float = 0.0,
    ) -> None:
        if length < 0:
            raise ValueError(f"payload length must be >= 0, got {length}")
        self.length = length
        self.flow_id = flow_id
        self.seq = seq
        self.sent_at = sent_at

    def encode(self) -> bytes:
        return b"\x00" * self.length

    def wire_length(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AppData(len={self.length}, flow={self.flow_id!r}, seq={self.seq})"
