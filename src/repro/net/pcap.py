"""Classic-format pcap export of simulated traffic.

Attach a :class:`PcapWriter` to any set of nodes and every frame they
receive is serialized (via the real codecs) into a standard ``.pcap``
file readable by Wireshark/tcpdump — invaluable when debugging protocol
behaviour inside the simulator.

The classic pcap format is written by hand (24-byte global header,
16-byte per-record headers, LINKTYPE_ETHERNET) — no external
dependencies.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.net.ethernet import EthernetFrame
from repro.net.link import Port
from repro.net.node import Node

_MAGIC = 0xA1B2C3D4
_VERSION = (2, 4)
_LINKTYPE_ETHERNET = 1
_SNAPLEN = 65535


class PcapWriter:
    """Writes Ethernet frames to a classic pcap stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self.frames_written = 0
        self._write_global_header()

    def _write_global_header(self) -> None:
        self._stream.write(struct.pack(
            "!IHHiIII", _MAGIC, _VERSION[0], _VERSION[1],
            0,  # timezone offset
            0,  # sigfigs
            _SNAPLEN, _LINKTYPE_ETHERNET,
        ))

    def write(self, time_s: float, frame: EthernetFrame) -> None:
        """Append one frame with the given (simulated) timestamp."""
        data = frame.encode()
        seconds = int(time_s)
        micros = int(round((time_s - seconds) * 1_000_000))
        if micros >= 1_000_000:  # rounding carried into the next second
            seconds += 1
            micros -= 1_000_000
        self._stream.write(struct.pack("!IIII", seconds, micros,
                                       len(data), len(data)))
        self._stream.write(data)
        self.frames_written += 1

    def close(self) -> None:
        """Flush and close the underlying stream."""
        self._stream.flush()
        self._stream.close()


class PcapTap:
    """Mirrors every frame received by selected nodes into a pcap file.

    Works by wrapping each node's ``receive`` method; call
    :meth:`detach` to restore the originals and close the file.
    """

    def __init__(self, path: str, nodes: list[Node]) -> None:
        self.writer = PcapWriter(open(path, "wb"))
        self._originals: list[tuple[Node, object]] = []
        for node in nodes:
            self._attach(node)

    def _attach(self, node: Node) -> None:
        original = node.receive
        writer = self.writer

        def tapped(frame: EthernetFrame, in_port: Port,
                   _original=original, _node=node) -> None:
            writer.write(_node.sim.now, frame)
            _original(frame, in_port)

        self._originals.append((node, original))
        node.receive = tapped  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the wrapped nodes and close the capture file."""
        for node, original in self._originals:
            node.receive = original  # type: ignore[method-assign]
        self._originals.clear()
        self.writer.close()


def read_pcap_headers(path: str) -> list[tuple[float, int]]:
    """Parse a pcap file back into ``(timestamp, length)`` records.

    Used by tests to verify round-tripping; raises ``ValueError`` on a
    malformed file.
    """
    records = []
    with open(path, "rb") as stream:
        header = stream.read(24)
        if len(header) != 24:
            raise ValueError("truncated pcap global header")
        (magic,) = struct.unpack("!I", header[:4])
        if magic != _MAGIC:
            raise ValueError(f"bad pcap magic: {magic:#x}")
        while True:
            record = stream.read(16)
            if not record:
                break
            if len(record) != 16:
                raise ValueError("truncated pcap record header")
            seconds, micros, incl_len, _orig = struct.unpack("!IIII", record)
            payload = stream.read(incl_len)
            if len(payload) != incl_len:
                raise ValueError("truncated pcap record body")
            records.append((seconds + micros / 1e6, incl_len))
    return records
