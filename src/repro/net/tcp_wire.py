"""TCP segment wire format (RFC 793 header, no options except MSS-free).

The TCP *behaviour* (state machine, RTO, congestion control) lives in
:mod:`repro.host.tcp`; this module is only the PDU.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.packet import Packet, encode_payload, payload_length

TCP_HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

_HEADER = struct.Struct("!HHIIBBHHH")


def flag_names(flags: int) -> str:
    """Human-readable flag string, e.g. ``"SYN|ACK"``."""
    names = []
    for bit, name in ((FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"),
                      (FLAG_RST, "RST"), (FLAG_PSH, "PSH")):
        if flags & bit:
            names.append(name)
    return "|".join(names) if names else "-"


class TcpSegment(Packet):
    """A TCP segment."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "payload")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload: Packet | bytes | None = None,
    ) -> None:
        for name, port in (("source", src_port), ("destination", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"bad TCP {name} port: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = min(window, 0xFFFF)
        self.payload = payload

    @property
    def payload_length(self) -> int:
        """Bytes of user data carried."""
        return payload_length(self.payload)

    @property
    def seg_len(self) -> int:
        """Sequence space consumed: data bytes plus one for SYN and FIN."""
        length = self.payload_length
        if self.flags & FLAG_SYN:
            length += 1
        if self.flags & FLAG_FIN:
            length += 1
        return length

    def wire_length(self) -> int:
        return TCP_HEADER_LEN + self.payload_length

    def encode(self) -> bytes:
        body = encode_payload(self.payload)
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            (TCP_HEADER_LEN // 4) << 4,  # data offset
            self.flags,
            self.window,
            0,  # checksum rendered as zero (simulator links are reliable)
            0,  # urgent pointer
        )
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "TcpSegment":
        """Parse wire bytes; payload kept raw."""
        if len(data) < TCP_HEADER_LEN:
            raise CodecError(f"TCP segment too short: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_byte, flags, window,
         _checksum, _urgent) = _HEADER.unpack_from(data, 0)
        header_len = (offset_byte >> 4) * 4
        if header_len < TCP_HEADER_LEN or header_len > len(data):
            raise CodecError(f"bad TCP data offset: {header_len}")
        return cls(src_port, dst_port, seq, ack, flags, window, data[header_len:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCP({self.src_port}->{self.dst_port} {flag_names(self.flags)}"
            f" seq={self.seq} ack={self.ack} len={self.payload_length})"
        )
