"""MAC (EUI-48) and IPv4 address value types.

Both types are immutable, hashable, ordered, and backed by a single
integer, so they are cheap to use as dict keys in ARP caches and flow
tables. PMAC structure (the PortLand-specific interpretation of the 48
bits) lives in :mod:`repro.portland.pmac`, not here — the wire format is
just Ethernet.
"""

from __future__ import annotations

from functools import total_ordering

from repro.errors import AddressError


@total_ordering
class MacAddress:
    """An EUI-48 MAC address."""

    __slots__ = ("_value", "_bytes", "_str")

    MAX = (1 << 48) - 1
    #: Bit 40 (the I/G bit of the first octet) marks group addresses.
    _MULTICAST_BIT = 1 << 40
    #: Bit 41 (the U/L bit) marks locally administered addresses.
    _LOCAL_BIT = 1 << 41

    def __init__(self, value: int) -> None:
        if not 0 <= value <= self.MAX:
            raise AddressError(f"MAC value out of range: {value:#x}")
        self._value = value
        # Lazily memoised encodings: the flow hash re-reads to_bytes()
        # on every uncached decision and traces stringify addresses per
        # record, but the value is immutable so both are computed once.
        self._bytes: bytes | None = None
        self._str: str | None = None

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (also accepts ``-`` separators)."""
        parts = text.replace("-", ":").split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address: {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError as exc:
            raise AddressError(f"malformed MAC address: {text!r}") from exc
        if any(not 0 <= octet <= 0xFF for octet in octets):
            raise AddressError(f"malformed MAC address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        """Build from exactly six bytes."""
        if len(data) != 6:
            raise AddressError(f"MAC needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def value(self) -> int:
        """The address as a 48-bit integer."""
        return self._value

    @property
    def is_broadcast(self) -> bool:
        """``ff:ff:ff:ff:ff:ff``."""
        return self._value == self.MAX

    @property
    def is_multicast(self) -> bool:
        """Group (I/G) bit set — includes broadcast."""
        return bool(self._value & self._MULTICAST_BIT)

    @property
    def is_locally_administered(self) -> bool:
        """U/L bit set. PortLand PMACs are locally administered."""
        return bool(self._value & self._LOCAL_BIT)

    def to_bytes(self) -> bytes:
        """Six-byte big-endian encoding (memoised)."""
        raw = self._bytes
        if raw is None:
            raw = self._bytes = self._value.to_bytes(6, "big")
        return raw

    def __str__(self) -> str:
        text = self._str
        if text is None:
            raw = self.to_bytes()
            text = self._str = ":".join(f"{octet:02x}" for octet in raw)
        return text

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((MacAddress, self._value))


#: The all-ones broadcast MAC.
BROADCAST_MAC = MacAddress(MacAddress.MAX)
#: Placeholder all-zero MAC (used in ARP requests' target field).
ZERO_MAC = MacAddress(0)


@total_ordering
class IPv4Address:
    """An IPv4 address."""

    __slots__ = ("_value",)

    MAX = (1 << 32) - 1

    def __init__(self, value: int) -> None:
        if not 0 <= value <= self.MAX:
            raise AddressError(f"IPv4 value out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad notation."""
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Build from exactly four bytes."""
        if len(data) != 4:
            raise AddressError(f"IPv4 needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    @property
    def is_multicast(self) -> bool:
        """Class D: 224.0.0.0/4."""
        return (self._value >> 28) == 0xE

    @property
    def is_limited_broadcast(self) -> bool:
        """The all-ones limited broadcast, 255.255.255.255."""
        return self._value == self.MAX

    def to_bytes(self) -> bytes:
        """Four-byte big-endian encoding."""
        return self._value.to_bytes(4, "big")

    def multicast_mac(self) -> MacAddress:
        """Map a class-D address to its Ethernet multicast MAC
        (``01:00:5e`` + low 23 bits), per RFC 1112 §6.4."""
        if not self.is_multicast:
            raise AddressError(f"{self} is not a multicast address")
        return MacAddress((0x01005E << 24) | (self._value & 0x7FFFFF))

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ".".join(str(octet) for octet in raw)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((IPv4Address, self._value))


def mac(text: str) -> MacAddress:
    """Shorthand constructor: ``mac("00:11:22:33:44:55")``."""
    return MacAddress.parse(text)


def ip(text: str) -> IPv4Address:
    """Shorthand constructor: ``ip("10.0.0.1")``."""
    return IPv4Address.parse(text)
