"""The Internet checksum (RFC 1071), used by IPv4/UDP/TCP/IGMP codecs."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    Odd-length input is implicitly padded with one zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
