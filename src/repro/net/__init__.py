"""Network substrate: addresses, packet codecs, links, ports, nodes."""

from repro.net.addresses import BROADCAST_MAC, ZERO_MAC, IPv4Address, MacAddress, ip, mac
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpPacket
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ethernet import (
    ETHERNET_MTU,
    ETHERTYPE_ARP,
    ETHERTYPE_FABRIC,
    ETHERTYPE_IPV4,
    ETHERTYPE_LDP,
    EthernetFrame,
)
from repro.net.igmp import IgmpMessage
from repro.net.ipv4 import (
    DEFAULT_TTL,
    IPPROTO_IGMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Packet,
)
from repro.net.link import Link, Port, PortCounters
from repro.net.node import Node
from repro.net.packet import AppData, Packet
from repro.net.tcp_wire import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.net.udp import UdpDatagram

__all__ = [
    "ARP_REPLY",
    "ARP_REQUEST",
    "AppData",
    "ArpPacket",
    "BROADCAST_MAC",
    "DEFAULT_TTL",
    "ETHERNET_MTU",
    "ETHERTYPE_ARP",
    "ETHERTYPE_FABRIC",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_LDP",
    "EthernetFrame",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "IPPROTO_IGMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPv4Address",
    "IPv4Packet",
    "IgmpMessage",
    "Link",
    "MacAddress",
    "Node",
    "Packet",
    "Port",
    "PortCounters",
    "TcpSegment",
    "UdpDatagram",
    "ZERO_MAC",
    "internet_checksum",
    "ip",
    "mac",
    "verify_checksum",
]
