"""ARP for IPv4-over-Ethernet (RFC 826), plus gratuitous-ARP helpers.

ARP is central to PortLand: edge switches intercept requests and the
fabric manager answers them with PMACs instead of letting them flood.
Gratuitous ARP is the invalidation mechanism after VM migration.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.addresses import BROADCAST_MAC, ZERO_MAC, IPv4Address, MacAddress
from repro.net.packet import Packet

ARP_REQUEST = 1
ARP_REPLY = 2

_HEADER = struct.Struct("!HHBBH")  # htype, ptype, hlen, plen, oper
_WIRE_LEN = _HEADER.size + 6 + 4 + 6 + 4  # 28 bytes


class ArpPacket(Packet):
    """An ARP request or reply for IPv4 over Ethernet."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(
        self,
        op: int,
        sender_mac: MacAddress,
        sender_ip: IPv4Address,
        target_mac: MacAddress,
        target_ip: IPv4Address,
    ) -> None:
        if op not in (ARP_REQUEST, ARP_REPLY):
            raise CodecError(f"bad ARP operation: {op}")
        self.op = op
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac
        self.target_ip = target_ip

    @classmethod
    def request(cls, sender_mac: MacAddress, sender_ip: IPv4Address,
                target_ip: IPv4Address) -> "ArpPacket":
        """A who-has request (target MAC is zero)."""
        return cls(ARP_REQUEST, sender_mac, sender_ip, ZERO_MAC, target_ip)

    @classmethod
    def reply(cls, sender_mac: MacAddress, sender_ip: IPv4Address,
              target_mac: MacAddress, target_ip: IPv4Address) -> "ArpPacket":
        """An is-at reply."""
        return cls(ARP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    @classmethod
    def gratuitous(cls, mac: MacAddress, ip: IPv4Address) -> "ArpPacket":
        """A gratuitous ARP announcing ``ip`` is at ``mac``.

        Encoded as an unsolicited reply with sender == target, the form
        PortLand uses to repoint stale ARP caches after VM migration.
        """
        return cls(ARP_REPLY, mac, ip, mac, ip)

    @property
    def is_gratuitous(self) -> bool:
        """True for an announcement where sender IP == target IP."""
        return self.sender_ip == self.target_ip

    def encode(self) -> bytes:
        header = _HEADER.pack(1, 0x0800, 6, 4, self.op)
        return (
            header
            + self.sender_mac.to_bytes()
            + self.sender_ip.to_bytes()
            + self.target_mac.to_bytes()
            + self.target_ip.to_bytes()
        )

    def wire_length(self) -> int:
        return _WIRE_LEN

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        """Parse wire bytes; validates the fixed hardware/protocol fields."""
        if len(data) < _WIRE_LEN:
            raise CodecError(f"ARP packet too short: {len(data)} bytes")
        htype, ptype, hlen, plen, op = _HEADER.unpack_from(data, 0)
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise CodecError("not an IPv4-over-Ethernet ARP packet")
        base = _HEADER.size
        return cls(
            op=op,
            sender_mac=MacAddress.from_bytes(data[base : base + 6]),
            sender_ip=IPv4Address.from_bytes(data[base + 6 : base + 10]),
            target_mac=MacAddress.from_bytes(data[base + 10 : base + 16]),
            target_ip=IPv4Address.from_bytes(data[base + 16 : base + 20]),
        )

    def ethernet_dst(self) -> MacAddress:
        """Conventional L2 destination: broadcast for requests and
        gratuitous announcements, unicast for solicited replies."""
        if self.op == ARP_REQUEST or self.is_gratuitous:
            return BROADCAST_MAC
        return self.target_mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "request" if self.op == ARP_REQUEST else "reply"
        return (
            f"Arp({kind} {self.sender_ip}/{self.sender_mac} -> "
            f"{self.target_ip}/{self.target_mac})"
        )
