"""Ports and full-duplex links with rate, delay, queueing, and failure.

A :class:`Link` joins exactly two :class:`Port` objects and models each
direction independently: a transmitter serializes frames at the link
rate (drop-tail queue while busy), then the frame propagates for the
configured delay and is delivered to the far node.

Failure semantics:

* ``fail()`` stops both directions immediately; frames being serialized
  or in flight are lost (as on a cut fiber), and queued frames drop.
* If ``carrier_detect`` is true (default), both endpoints' nodes get
  ``on_port_down``/``on_port_up`` callbacks, like a PHY loss-of-signal
  interrupt. Experiments that study *timeout-based* detection (LDP
  keepalive loss, Fig. 10's worst case) construct links with
  ``carrier_detect=False`` so failures are silent.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import LinkError
from repro.net.ethernet import EthernetFrame
from repro.sim.events import PRIORITY_HIGH
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

#: Preamble (8B) + inter-frame gap (12B) charged per frame on the wire.
PER_FRAME_OVERHEAD_BYTES = 20

#: Fraction of the link rate a direction always keeps available to each
#: side of a hybrid run, however loaded the other side is. Keeps a
#: frame-congested direction from reading as *carrier-dead* to the fluid
#: engine (capacity 0 would make it drop the pinned path) and keeps
#: fluid saturation from stretching frame serialization to infinity.
HYBRID_CAPACITY_FLOOR = 0.01

#: 1 Gb/s, the paper's testbed link speed.
DEFAULT_RATE_BPS = 1_000_000_000
#: A conservative intra-rack propagation delay.
DEFAULT_DELAY_S = 1e-6
#: Default drop-tail queue capacity per direction.
DEFAULT_QUEUE_BYTES = 512 * 1024


class PortCounters:
    """Per-port traffic counters."""

    __slots__ = ("tx_frames", "tx_bytes", "rx_frames", "rx_bytes", "drops")

    def __init__(self) -> None:
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.drops = 0


class Port:
    """One attachment point on a node. At most one link per port."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.link: Link | None = None
        self.counters = PortCounters()
        #: Administrative state; a port can be disabled independently of
        #: its link (used to model switch-local port shutdown).
        self.enabled = True

    @property
    def name(self) -> str:
        """``<node>[<index>]`` for traces."""
        return f"{self.node.name}[{self.index}]"

    @property
    def is_up(self) -> bool:
        """True when enabled, wired, and the link is not failed."""
        return self.enabled and self.link is not None and not self.link.failed

    @property
    def peer(self) -> "Port | None":
        """The port at the other end of our link, if wired."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def send(self, frame: EthernetFrame) -> bool:
        """Transmit ``frame``. Returns False (and counts a drop) when the
        port is down or the link queue is full."""
        if not self.enabled or self.link is None:
            self.counters.drops += 1
            return False
        return self.link.transmit(self, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wired = "wired" if self.link is not None else "unwired"
        return f"<Port {self.name} {wired}>"


class _Direction:
    """Transmitter state for one direction of a link."""

    __slots__ = ("queue", "queued_bytes", "transmitting", "class_queues")

    def __init__(self) -> None:
        self.queue: deque[EthernetFrame] = deque()
        self.queued_bytes = 0
        self.transmitting = False
        # Strict-priority queues for tclass > 0 frames, created lazily by
        # the first classed frame that has to wait behind a busy
        # transmitter. None on every direction that only ever carries
        # best-effort traffic, so the classic dequeue path — and the
        # golden trace — is untouched by the queues existing at all.
        self.class_queues: dict[int, deque[EthernetFrame]] | None = None

    def clear(self) -> None:
        self.queue.clear()
        self.queued_bytes = 0
        self.transmitting = False
        self.class_queues = None


class Link:
    """A full-duplex point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        rate_bps: float = DEFAULT_RATE_BPS,
        delay_s: float = DEFAULT_DELAY_S,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        carrier_detect: bool = True,
        name: str | None = None,
        loss_rate: float = 0.0,
        priority_queues: bool = True,
    ) -> None:
        if a.link is not None or b.link is not None:
            raise LinkError(f"port already wired: {a if a.link else b}")
        if a is b:
            raise LinkError("cannot wire a port to itself")
        if rate_bps <= 0 or delay_s < 0 or queue_bytes < 0:
            raise LinkError("invalid link parameters")
        if not 0.0 <= loss_rate < 1.0:
            raise LinkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.a = a
        self.b = b
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_bytes = queue_bytes
        self.carrier_detect = carrier_detect
        self.failed = False
        #: Port ids whose *transmit* direction is dead (unidirectional
        #: failures; see :meth:`fail_direction`).
        self._failed_tx: set[int] = set()
        self.name = name or f"{a.name}<->{b.name}"
        # Per-byte serialization cost, fixed at construction so the hot
        # path multiplies instead of recomputing from the bandwidth on
        # every frame.
        self._sec_per_byte = 8.0 / rate_bps
        #: Listeners called (no arguments) after any carrier-state change:
        #: fail, fail_direction, recover, detach. Compiled-path caches use
        #: this to retire paths that traverse the link.
        self._state_listeners: list = []
        #: Random per-frame drop probability (0 = perfect link).
        self.loss_rate = loss_rate
        self._loss_rng = (sim.random.stream(f"link-loss/{self.name}")
                          if loss_rate > 0 else None)
        self._dirs: dict[int, _Direction] = {id(a): _Direction(), id(b): _Direction()}
        # Hybrid fluid+frame capacity sharing (see docs/FLOWS.md). All
        # three dicts are keyed by id(src_port) and stay EMPTY outside
        # hybrid runs, so the classic frame and fluid paths execute the
        # exact same float operations as before (golden-trace identical).
        #: Gross fluid rate currently allocated per transmit direction.
        self._fluid_bps: dict[int, float] = {}
        #: Frame-path load estimate per transmit direction (epoch EWMA).
        self._frame_bps: dict[int, float] = {}
        #: Cumulative fluid-charged tx bytes per transmit direction —
        #: lets the epoch tick separate frame bytes out of tx_bytes.
        self._fluid_tx_bytes: dict[int, int] = {}
        #: Serve tclass > 0 frames from strict-priority egress queues.
        #: False degrades every direction to a single FIFO — the
        #: comparison arm `make bench-policy` measures against.
        self.priority_queues = priority_queues
        # Per-class accounting, keyed id(src_port) → {tclass: count}.
        # Only classed (tclass > 0) traffic creates entries; class 0 is
        # the port counter totals minus these, so default workloads keep
        # both dicts empty (golden-trace identical).
        self._class_tx_bytes: dict[int, dict[int, int]] = {}
        self._class_drops: dict[int, dict[int, int]] = {}
        a.link = self
        b.link = self
        if carrier_detect:
            # Plugging a cable in asserts carrier at both ends, exactly
            # like a real NIC/PHY. Agents use this to notice new hosts.
            self.sim.schedule(0.0, self._notify_up, priority=PRIORITY_HIGH)

    def other_end(self, port: Port) -> Port:
        """The opposite port of ``port`` on this link."""
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise LinkError(f"{port} is not an endpoint of {self.name}")

    def serialization_time(self, frame: EthernetFrame,
                           src_port: Port | None = None) -> float:
        """Seconds to clock ``frame`` (plus preamble/IFG) onto the wire.

        When ``src_port`` is given and fluid flows hold part of that
        direction (hybrid mode), the frame only gets the residual rate:
        serialization stretches by ``rate / (rate - fluid)``, floored at
        :data:`HYBRID_CAPACITY_FLOOR` so a fluid-saturated direction
        degrades instead of stalling. With no fluid load registered the
        classic single-mode expression runs unchanged.
        """
        base = (frame.wire_length() + PER_FRAME_OVERHEAD_BYTES) * self._sec_per_byte
        if src_port is not None and self._fluid_bps:
            fluid = self._fluid_bps.get(id(src_port), 0.0)
            if fluid > 0.0:
                residual = max(self.rate_bps - fluid,
                               self.rate_bps * HYBRID_CAPACITY_FLOOR)
                return base * (self.rate_bps / residual)
        return base

    def add_state_listener(self, listener) -> None:
        """Call ``listener()`` after every carrier-state change of this
        link (fail/fail_direction/recover/detach)."""
        self._state_listeners.append(listener)

    def can_carry(self, src_port: Port) -> bool:
        """Whether a frame transmitted from ``src_port`` would currently
        traverse (no full or ``src_port``-direction failure)."""
        return not self.failed and id(src_port) not in self._failed_tx

    def capacity_bps(self, src_port: Port) -> float:
        """Usable capacity of the ``src_port`` → peer direction, in bits
        per second — 0 when the direction is administratively disabled,
        unwired at either end, or failed. This is the per-direction
        constraint the flow-level (fluid) engine water-fills against."""
        if not src_port.enabled or not self.can_carry(src_port):
            return 0.0
        if not self.other_end(src_port).enabled:
            return 0.0
        return self.rate_bps

    def fluid_capacity_bps(self, src_port: Port) -> float:
        """Capacity the fluid engine may water-fill in the ``src_port``
        direction: :meth:`capacity_bps` minus the frame path's measured
        load (hybrid mode), floored at :data:`HYBRID_CAPACITY_FLOOR` of
        the rate so frame congestion is never mistaken for a dead
        direction. Identical to :meth:`capacity_bps` outside hybrid runs
        (no frame load registered)."""
        cap = self.capacity_bps(src_port)
        if cap <= 0.0 or not self._frame_bps:
            return cap
        frame = self._frame_bps.get(id(src_port), 0.0)
        if frame <= 0.0:
            return cap
        return max(cap - frame, self.rate_bps * HYBRID_CAPACITY_FLOOR)

    def set_fluid_load(self, src_port: Port, bps: float) -> None:
        """Register the gross fluid rate allocated over the ``src_port``
        direction (hybrid mode). Zero/negative clears the entry, so the
        dict stays empty — and serialization bit-identical — whenever no
        fluid flow actually crosses the direction."""
        if bps > 0.0:
            self._fluid_bps[id(src_port)] = bps
        else:
            self._fluid_bps.pop(id(src_port), None)

    def set_frame_load(self, src_port: Port, bps: float) -> None:
        """Register the frame path's estimated load on the ``src_port``
        direction (hybrid mode epoch tick). Zero/negative clears."""
        if bps > 0.0:
            self._frame_bps[id(src_port)] = bps
        else:
            self._frame_bps.pop(id(src_port), None)

    def class_tx_bytes(self, src_port: Port) -> dict[int, int]:
        """Wire bytes transmitted per traffic class on the ``src_port``
        direction. Classed (tclass > 0) traffic only; class 0 is
        ``counters.tx_bytes`` minus the sum of these."""
        return dict(self._class_tx_bytes.get(id(src_port), ()))

    def class_drops(self, src_port: Port) -> dict[int, int]:
        """Queue-full drops per traffic class on the ``src_port``
        direction (classed traffic only)."""
        return dict(self._class_drops.get(id(src_port), ()))

    def frame_tx_bytes(self, src_port: Port) -> int:
        """Transmit bytes the *frame* path put on the ``src_port``
        direction: the port counter minus fluid-charged bytes."""
        return (src_port.counters.tx_bytes
                - self._fluid_tx_bytes.get(id(src_port), 0))

    def fluid_charge(self, src_port: Port, frames: int, nbytes: int) -> None:
        """Charge ``frames``/``nbytes`` of fluid (flow-level) traffic to
        the ``src_port`` → peer direction's counters.

        The flow engine advances flows in rate-sized chunks instead of
        per-frame events; this books the equivalent tx/rx totals so
        :mod:`repro.metrics.utilization` aggregates are mode-agnostic.
        """
        src_port.counters.tx_frames += frames
        src_port.counters.tx_bytes += nbytes
        pid = id(src_port)
        self._fluid_tx_bytes[pid] = self._fluid_tx_bytes.get(pid, 0) + nbytes
        dst = self.other_end(src_port).counters
        dst.rx_frames += frames
        dst.rx_bytes += nbytes

    def _notify_state(self) -> None:
        for listener in self._state_listeners:
            listener()

    def transmit(self, src_port: Port, frame: EthernetFrame) -> bool:
        """Send ``frame`` from ``src_port`` toward the other end."""
        if self.failed or id(src_port) in self._failed_tx:
            src_port.counters.drops += 1
            return False
        direction = self._dirs[id(src_port)]
        if direction.transmitting:
            size = frame.wire_length()
            if direction.queued_bytes + size > self.queue_bytes:
                src_port.counters.drops += 1
                if frame.tclass:
                    per = self._class_drops.setdefault(id(src_port), {})
                    per[frame.tclass] = per.get(frame.tclass, 0) + 1
                self.sim.trace.emit(
                    self.sim.now, "link.drop", self.name,
                    port=src_port.name, reason="queue_full", frame=repr(frame),
                )
                return False
            if frame.tclass and self.priority_queues:
                queues = direction.class_queues
                if queues is None:
                    queues = direction.class_queues = {}
                queues.setdefault(frame.tclass, deque()).append(frame)
            else:
                direction.queue.append(frame)
            direction.queued_bytes += size
            return True
        self._start_transmission(src_port, direction, frame)
        return True

    def _start_transmission(self, src_port: Port, direction: _Direction,
                            frame: EthernetFrame) -> None:
        direction.transmitting = True
        duration = self.serialization_time(frame, src_port)
        src_port.counters.tx_frames += 1
        src_port.counters.tx_bytes += frame.wire_length()
        if frame.tclass:
            per = self._class_tx_bytes.setdefault(id(src_port), {})
            per[frame.tclass] = per.get(frame.tclass, 0) + frame.wire_length()
        self.sim.schedule(duration, self._transmission_done, src_port, direction)
        self.sim.schedule(duration + self.delay_s, self._deliver, src_port, frame)

    def _transmission_done(self, src_port: Port, direction: _Direction) -> None:
        if self.failed:
            # fail() already flushed the queue and cleared the flag.
            return
        frame = None
        queues = direction.class_queues
        if queues:
            # Strict priority: the highest waiting class transmits next,
            # always ahead of anything in the best-effort FIFO.
            for tclass in sorted(queues, reverse=True):
                pending = queues[tclass]
                if pending:
                    frame = pending.popleft()
                    if not pending:
                        del queues[tclass]
                    break
        if frame is None and direction.queue:
            frame = direction.queue.popleft()
            if queues:
                # Unreachable by construction (classed queues drained
                # above); a live tripwire the invariant oracle watches so
                # any future dequeue reordering surfaces as a violation.
                self.sim.trace.emit(
                    self.sim.now, "verify.class_inversion", self.name,
                    port=src_port.name,
                    waiting=sorted(queues))  # pragma: no cover
        if frame is not None:
            direction.queued_bytes -= frame.wire_length()
            self._start_transmission(src_port, direction, frame)
        else:
            direction.transmitting = False

    def _deliver(self, src_port: Port, frame: EthernetFrame) -> None:
        if self.failed or id(src_port) in self._failed_tx:
            # The cut happened while the frame was in flight: it is lost.
            return
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            src_port.counters.drops += 1
            self.sim.trace.emit(self.sim.now, "link.loss", self.name,
                                port=src_port.name)
            return
        dst_port = self.other_end(src_port)
        if not dst_port.enabled:
            dst_port.counters.drops += 1
            return
        dst_port.counters.rx_frames += 1
        dst_port.counters.rx_bytes += frame.wire_length()
        dst_port.node.receive(frame, dst_port)

    def fail(self) -> None:
        """Cut the link: drop queued and in-flight frames, notify endpoints
        if carrier detection is on. Idempotent."""
        if self.failed:
            return
        self.failed = True
        for direction in self._dirs.values():
            direction.clear()
        self.sim.trace.emit(self.sim.now, "link.fail", self.name)
        self._notify_state()
        if self.carrier_detect:
            # High priority so agents observe the loss before packets that
            # would otherwise arrive "at the same instant".
            self.sim.schedule(0.0, self._notify_down, priority=PRIORITY_HIGH)

    def fail_direction(self, src_port: Port) -> None:
        """Silently kill only the ``src_port`` → peer direction.

        Models a unidirectional failure (bad optics, one-way fibre cut):
        no carrier event is raised — only the *receiving* side can notice,
        via protocol keepalive loss. Recover with :meth:`recover`.
        """
        if src_port not in (self.a, self.b):
            raise LinkError(f"{src_port} is not an endpoint of {self.name}")
        self._failed_tx.add(id(src_port))
        self._dirs[id(src_port)].clear()
        self.sim.trace.emit(self.sim.now, "link.fail_direction", self.name,
                            from_port=src_port.name)
        self._notify_state()

    def recover(self) -> None:
        """Restore a failed link (full or unidirectional). Idempotent."""
        was_failed = self.failed or bool(self._failed_tx)
        self._failed_tx.clear()
        if not was_failed:
            return
        fully_failed = self.failed
        self.failed = False
        self.sim.trace.emit(self.sim.now, "link.recover", self.name)
        self._notify_state()
        if fully_failed and self.carrier_detect:
            self.sim.schedule(0.0, self._notify_up, priority=PRIORITY_HIGH)

    def detach(self) -> None:
        """Unwire both ports so they can be re-linked elsewhere.

        Used to model physically moving a cable (e.g. a VM migrating to a
        different edge switch). Any queued or in-flight frames are lost.
        """
        if not self.failed:
            self.fail()
        self.a.link = None
        self.b.link = None
        # fail() already notified if the link was up; notify again so
        # listeners observe the unwiring even on an already-failed link.
        self._notify_state()

    def _notify_down(self) -> None:
        for port in (self.a, self.b):
            port.node.on_port_down(port)

    def _notify_up(self) -> None:
        for port in (self.a, self.b):
            port.node.on_port_up(port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self.failed else "up"
        return f"<Link {self.name} {state}>"
