"""IGMPv2 membership messages (RFC 2236), simplified.

PortLand uses the hosts' ordinary IGMP joins/leaves: the edge switch
forwards them to the fabric manager, which maintains the multicast tree.
We implement report (join) and leave-group messages; queries are not
needed because the fabric manager has authoritative state.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.addresses import IPv4Address
from repro.net.checksum import internet_checksum
from repro.net.packet import Packet

IGMP_MEMBERSHIP_REPORT_V2 = 0x16
IGMP_LEAVE_GROUP = 0x17

IGMP_LEN = 8


class IgmpMessage(Packet):
    """An IGMPv2 membership report or leave-group message."""

    __slots__ = ("msg_type", "group")

    def __init__(self, msg_type: int, group: IPv4Address) -> None:
        if msg_type not in (IGMP_MEMBERSHIP_REPORT_V2, IGMP_LEAVE_GROUP):
            raise CodecError(f"unsupported IGMP type: {msg_type:#x}")
        if not group.is_multicast:
            raise CodecError(f"IGMP group {group} is not class D")
        self.msg_type = msg_type
        self.group = group

    @classmethod
    def join(cls, group: IPv4Address) -> "IgmpMessage":
        """Membership report announcing interest in ``group``."""
        return cls(IGMP_MEMBERSHIP_REPORT_V2, group)

    @classmethod
    def leave(cls, group: IPv4Address) -> "IgmpMessage":
        """Leave-group message for ``group``."""
        return cls(IGMP_LEAVE_GROUP, group)

    @property
    def is_join(self) -> bool:
        """True for a membership report."""
        return self.msg_type == IGMP_MEMBERSHIP_REPORT_V2

    def wire_length(self) -> int:
        return IGMP_LEN

    def encode(self) -> bytes:
        body = struct.pack("!BBH", self.msg_type, 0, 0) + self.group.to_bytes()
        checksum = internet_checksum(body)
        return struct.pack("!BBH", self.msg_type, 0, checksum) + self.group.to_bytes()

    @classmethod
    def decode(cls, data: bytes) -> "IgmpMessage":
        """Parse wire bytes."""
        if len(data) < IGMP_LEN:
            raise CodecError(f"IGMP message too short: {len(data)} bytes")
        msg_type, _mrt, _checksum = struct.unpack_from("!BBH", data, 0)
        group = IPv4Address.from_bytes(data[4:8])
        return cls(msg_type, group)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "join" if self.is_join else "leave"
        return f"IGMP({kind} {self.group})"
