"""Ethernet II framing, with optional 802.1Q VLAN tagging.

The frame object is the unit that links carry and switches forward.
Minimum-frame padding (64-byte frames on the wire) is accounted for in
``wire_length`` so byte counters match what real hardware would carry;
the 8-byte preamble and 12-byte inter-frame gap are modelled by
:class:`repro.net.link.Link` as per-frame overhead, not here.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError
from repro.net.addresses import MacAddress
from repro.net.packet import Packet, encode_payload, payload_length

# EtherTypes used in this library. LDP and the fabric-manager protocol are
# PortLand control protocols; we give them experimental EtherTypes just as
# the paper's OpenFlow agents would tunnel them.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_LDP = 0x88B5  # IEEE experimental ethertype 1
ETHERTYPE_FABRIC = 0x88B6  # IEEE experimental ethertype 2

#: Ethernet header: dst(6) + src(6) + ethertype(2).
ETHERNET_HEADER_LEN = 14
#: 802.1Q tag adds 4 bytes.
VLAN_TAG_LEN = 4
#: Frame check sequence.
ETHERNET_FCS_LEN = 4
#: Minimum frame size on the wire (header + payload + FCS).
ETHERNET_MIN_FRAME = 64
#: Conventional MTU for the payload.
ETHERNET_MTU = 1500


class EthernetFrame(Packet):
    """An Ethernet II frame, optionally 802.1Q-tagged."""

    __slots__ = ("dst", "src", "ethertype", "payload", "vlan", "tclass",
                 "_fwd_memo", "_wire_len")

    def __init__(
        self,
        dst: MacAddress,
        src: MacAddress,
        ethertype: int,
        payload: Packet | bytes | None,
        vlan: int | None = None,
        tclass: int = 0,
    ) -> None:
        if not 0 <= ethertype <= 0xFFFF:
            raise CodecError(f"ethertype out of range: {ethertype:#x}")
        if vlan is not None and not 0 <= vlan <= 0xFFF:
            raise CodecError(f"VLAN id out of range: {vlan}")
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload
        self.vlan = vlan
        # Serving class at strict-priority egress queues (0 = best
        # effort, the only value classic workloads ever produce).
        # Derived from the IPv4 DSCP at the sending host
        # (repro.policy.classes.class_of_dscp) so links never parse IP
        # headers; not on the wire (it models an 802.1p PCP field the
        # byte-accurate codec rounds to zero cost).
        self.tclass = tclass
        # Memoised (src value, decision key) managed by
        # repro.switching.flow_table; a pure function of the headers and
        # the (immutable-once-sent) payload, revalidated against
        # src/dst/ethertype on every read so header rewrites can never
        # serve a stale key.
        self._fwd_memo: tuple | None = None
        # Memoised wire_length(): read per hop (entry counters, port
        # counters, serialization time) but constant per frame — the
        # payload is immutable once sent and header rewrites never change
        # the length (only the VLAN tag could, and it is fixed at
        # construction). copy() carries the memo, which stays valid
        # because copies share the payload.
        self._wire_len: int | None = None

    def header_length(self) -> int:
        """Bytes of framing overhead (header + FCS + any VLAN tag)."""
        length = ETHERNET_HEADER_LEN + ETHERNET_FCS_LEN
        if self.vlan is not None:
            length += VLAN_TAG_LEN
        return length

    def wire_length(self) -> int:
        """Frame size on the wire, including minimum-frame padding."""
        length = self._wire_len
        if length is None:
            length = self._wire_len = max(
                self.header_length() + payload_length(self.payload),
                ETHERNET_MIN_FRAME)
        return length

    def encode(self) -> bytes:
        """Wire bytes (FCS rendered as four zero bytes; padding applied)."""
        body = encode_payload(self.payload)
        if self.vlan is not None:
            header = self.dst.to_bytes() + self.src.to_bytes()
            header += struct.pack("!HHH", ETHERTYPE_VLAN, self.vlan, self.ethertype)
        else:
            header = self.dst.to_bytes() + self.src.to_bytes()
            header += struct.pack("!H", self.ethertype)
        frame = header + body
        pad = max(0, ETHERNET_MIN_FRAME - ETHERNET_FCS_LEN - len(frame))
        return frame + b"\x00" * pad + b"\x00" * ETHERNET_FCS_LEN

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        """Parse header fields; the payload is kept as raw bytes.

        Higher-layer decoding is dispatched by the receiver based on
        ``ethertype`` (see the host stack). The trailing FCS is stripped.
        """
        if len(data) < ETHERNET_HEADER_LEN + ETHERNET_FCS_LEN:
            raise CodecError(f"frame too short: {len(data)} bytes")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack_from("!H", data, 12)
        offset = 14
        vlan = None
        if ethertype == ETHERTYPE_VLAN:
            if len(data) < offset + 4:
                raise CodecError("truncated VLAN tag")
            tag, ethertype = struct.unpack_from("!HH", data, offset)
            vlan = tag & 0xFFF
            offset += 4
        body = data[offset : len(data) - ETHERNET_FCS_LEN]
        return cls(dst=dst, src=src, ethertype=ethertype, payload=body, vlan=vlan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EthernetFrame({self.src}->{self.dst} type={self.ethertype:#06x}"
            f" len={self.wire_length()})"
        )
