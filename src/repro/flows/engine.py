"""The fluid flow engine: max-min rates over compiled paths.

Where the frame path schedules one (composite) event per *frame*, the
:class:`FlowEngine` schedules one event per *rate change*: flows hold a
constant rate between recomputation points, and state only advances at

* flow arrival and completion (and explicit ``stop_flow``),
* every :class:`~repro.switching.path_cache.PathCache` invalidation that
  retires a compiled path — fault overrides (FaultUpdate/FaultClear),
  Disable/EnableLink, any carrier-state change of a traversed link — at
  which point affected flows re-resolve through the live decision layer
  and all rates are re-filled,
* a slow retry tick while any flow is stalled (no current path — e.g. a
  partition) or riding a volatile (uncompiled) path.

Rates come from *progressive filling* (max-min fairness): all unfrozen
flows rise together until a flow hits its demand or a directed link
saturates; flows crossing a saturated link freeze at their fair share;
repeat. Capacity accounting is in gross wire bits (headers plus
preamble/IFG) against :meth:`repro.net.link.Link.capacity_bps`, so a
fluid flow occupies exactly the bandwidth its frames would.

At every settlement the engine charges the same counters the frame path
charges — per-port tx/rx frames and bytes on every traversed link
(:meth:`~repro.net.link.Link.fluid_charge`, including the ingress
host→edge link) and packet/byte counts on every matched stage-2 flow
entry — so :mod:`repro.metrics.utilization` snapshots, ``by_layer``, and
``imbalance`` work unchanged in either mode.

Deliberate approximations (see ``docs/FLOWS.md``): no per-packet
latency, loss, or queue occupancy; during the instant between a
mid-interval link death and the recompute it triggers, in-transfer fluid
is charged like frames already on the wire.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.flows.flow import Flow, FluidTcp, ResolvedPath
from repro.host.tcp.congestion import DEFAULT_MSS, INITIAL_WINDOW_SEGMENTS
from repro.host.tcp.connection import RECEIVE_WINDOW
from repro.net.link import PER_FRAME_OVERHEAD_BYTES
from repro.sim.events import PRIORITY_LOW
from repro.sim.process import Timer
from repro.switching.hop_walk import walk_decision_path
from repro.switching.switch import FlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link, Port
    from repro.topology.builder import PortlandFabric

#: Saturation slack for the progressive filling loop, in bits/s — six
#: orders below the 1 Gb/s default link rate, far above float noise.
_EPS_BPS = 1e-3

#: Default re-resolve period while flows are stalled or volatile.
DEFAULT_RETRY_INTERVAL_S = 0.020

#: Gross wire occupancy of a zero-payload TCP control segment (SYN /
#: pure ACK / FIN): the 64-byte minimum Ethernet frame plus preamble and
#: inter-frame gap. Clocks the model's reverse (ACK) direction.
_ACK_GROSS_BYTES = 64 + PER_FRAME_OVERHEAD_BYTES

#: Minimum spare path capacity (gross bits/s) that makes window growth
#: worth waking up for. A window-bound flow on a saturated path would
#: just be cut back next recompute — ramp ticks there would re-run the
#: whole AIMD cycle every RTT for nothing.
_MIN_RAMP_HEADROOM_BPS = 1e6

#: Timestamp slack for the ready_at/close_at deadline checks.
_EPS_S = 1e-12


def max_min_allocate(demands: list[float], segs_of: list[list[int]],
                     remaining: dict[int, float],
                     active: set[int] | None = None) -> list[float]:
    """Progressive-filling max-min allocation.

    ``demands[i]`` is flow *i*'s rate ceiling (``inf`` for greedy),
    ``segs_of[i]`` the constrained directed-link ids it occupies, and
    ``remaining`` the spare capacity per directed link id — mutated in
    place so the caller can read post-allocation headroom. ``active``
    restricts which flows participate (others get 0). Returns the
    per-flow rates.

    Invariants (property-tested in ``tests/flows/test_refill_properties``):
    every rate ≤ its demand; per-link allocations sum to ≤ the link's
    starting capacity; and removing a flow improves the survivors in
    the *leximin* order — the sorted survivor rate vector never drops
    lexicographically (per-flow monotonicity is genuinely false for
    multi-link max-min: freeing one link can let a neighbor grow and
    squeeze a third flow elsewhere).
    """
    rates = [0.0] * len(demands)
    unfrozen = (set(range(len(demands))) if active is None
                else set(active))
    for _round in range(len(demands) + 1):
        if not unfrozen:
            break
        members: dict[int, int] = {}
        for i in unfrozen:
            for pid in segs_of[i]:
                members[pid] = members.get(pid, 0) + 1
        delta = min(demands[i] - rates[i] for i in unfrozen)
        for pid, count in members.items():
            share = remaining[pid] / count
            if share < delta:
                delta = share
        if delta > 0 and not math.isinf(delta):
            for i in unfrozen:
                rates[i] += delta
            for pid, count in members.items():
                remaining[pid] -= delta * count
        frozen = {
            i for i in unfrozen
            if rates[i] >= demands[i] - _EPS_BPS
            or any(remaining[pid] <= _EPS_BPS for pid in segs_of[i])
        }
        if not frozen:
            break
        unfrozen -= frozen
    return rates


class FlowEngine:
    """Fluid-mode executor for one fabric.

    Built by the topology builder when ``PortlandConfig.flow_mode`` is
    set (which also forces the compiled-path cache on — resolution and
    invalidation ride the same machinery as cut-through transit).
    """

    def __init__(self, fabric: "PortlandFabric",
                 retry_interval_s: float = DEFAULT_RETRY_INTERVAL_S) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.path_cache = fabric.path_cache
        self.retry_interval_s = retry_interval_s
        config = fabric.config
        #: Hybrid fluid+frame execution: push fluid allocations onto the
        #: links (slowing frame serialization there) and subtract the
        #: epoch-sampled frame load from the capacity water-filling sees.
        self.hybrid = config.flow_mode == "hybrid"
        self.epoch_s = config.hybrid_epoch_s
        #: RTT-aware TCP rate model for greedy flows (see FluidTcp).
        self.tcp_enabled = config.fluid_tcp
        if self.path_cache is not None:
            self.path_cache.add_invalidation_listener(self._on_invalidation)
        #: Admitted, not-yet-completed flows (stalled ones included).
        self.flows: list[Flow] = []
        #: Completed (or stopped) flows, in completion order.
        self.finished: list[Flow] = []
        self._last_settle = self.sim.now
        self._recompute_pending = False
        self._completion_timer = Timer(self.sim, self._kick,
                                       priority=PRIORITY_LOW)
        self._retry_timer = Timer(self.sim, self._kick, priority=PRIORITY_LOW)
        # Hybrid capacity-sharing state (all empty outside hybrid runs).
        #: Directed links fluid flows currently cross: id(port) -> (link,
        #: tx port). The epoch tick samples frame load on exactly these.
        self._fluid_dirs: dict[int, tuple["Link", "Port"]] = {}
        #: Per-direction epoch accumulator: (frame tx-byte watermark,
        #: timestamp) at the last sample. Seeded when a direction joins
        #: the fluid set, so each direction meters only its own bytes
        #: over its own elapsed window — directions that join mid-epoch
        #: (or rejoin after retirement) never inherit another epoch's
        #: span or a stale watermark.
        self._frame_seen: dict[int, tuple[int, float]] = {}
        #: Frame-load EWMA per direction (gross bits/s).
        self._frame_ewma: dict[int, float] = {}
        self._epoch_timer = Timer(self.sim, self._epoch_tick,
                                  priority=PRIORITY_LOW)
        # Counters (see stats()).
        self.flows_started = 0
        self.flows_completed = 0
        self.recomputes = 0
        self.reresolutions = 0
        self.stall_events = 0
        #: Utilization epochs sampled (hybrid mode only).
        self.epoch_ticks = 0
        #: Times the TCP model cut a window to its share's BDP.
        self.tcp_cuts = 0
        #: Times a routed flow was allocated less than its demand (its
        #: max-min share hit a saturated link). Zero over a whole run
        #: certifies the run was demand-limited — the regime in which
        #: flows do not couple through shared links, which is what the
        #: sharded kernel's per-shard fluid engines rely on (each shard
        #: computes rates from its own flows only; see docs/PERF.md).
        self.bottleneck_events = 0

    # ------------------------------------------------------------------
    # Flow admission / teardown

    def start_flow(self, src, dst_ip, **kwargs) -> Flow:
        """Admit a new :class:`Flow` now (kwargs go to the Flow
        constructor) and trigger a rate recomputation."""
        flow = Flow(src, dst_ip, **kwargs)
        flow.started_at = self.sim.now
        self.flows.append(flow)
        self.flows_started += 1
        trace = self.sim.trace
        if trace.wants("flow.start"):
            trace.emit(self.sim.now, "flow.start", flow.name,
                       src=flow.src.name, dst=str(flow.dst_ip),
                       demand_bps=flow.demand_bps, size=flow.size_bytes)
        self._kick()
        return flow

    def stop_flow(self, flow: Flow) -> None:
        """Terminate an open-ended flow now (bytes so far stay charged)."""
        if flow.completed_at is not None:
            return
        self._settle()
        self._finish(flow, completed=False)
        self._kick()

    # ------------------------------------------------------------------
    # Event scheduling

    def _kick(self) -> None:
        """Coalesce any number of same-instant triggers (arrivals,
        invalidation fan-outs, timer pops) into one recompute event,
        run at low priority so every state change at this timestamp is
        visible to the re-resolve."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule(0.0, self._recompute, priority=PRIORITY_LOW)

    def _on_invalidation(self, _source: str, _reason: str) -> None:
        if self.flows:
            self._kick()

    def _recompute(self) -> None:
        self._recompute_pending = False
        self.recomputes += 1
        self._settle()
        now = self.sim.now
        for flow in [f for f in self.flows if f.finished_transfer]:
            tcp = flow.tcp
            if tcp is None:
                self._finish(flow, completed=True)
                continue
            # TCP flows linger for the drain tail: the last frame still
            # has to cross the remaining hops and the FIN exchange has
            # to complete before the sender's FCT clock stops.
            if tcp.close_at is None:
                tcp.close_at = now + tcp.tail_s
                tcp.cwnd_limited = False
                self._set_rate(flow, 0.0)
            if now >= tcp.close_at - _EPS_S:
                self._finish(flow, completed=True)
        self._resolve_all()
        self._advance_windows()
        self._refill()
        self._arm_timers()

    # ------------------------------------------------------------------
    # Settlement (advance fluid state to now)

    def settle_now(self) -> None:
        """Advance transfer totals and counters to the current simulated
        time without changing rates — call before reading byte counters
        or ``transferred_bytes`` at an arbitrary instant."""
        self._settle()

    def _settle(self) -> None:
        now = self.sim.now
        dt = now - self._last_settle
        self._last_settle = now
        if dt <= 0:
            return
        for flow in self.flows:
            if flow.rate_bps <= 0:
                continue
            delta = flow.rate_bps * dt / 8
            if flow.size_bytes is not None:
                delta = min(delta, flow.size_bytes - flow.transferred_bytes)
                if delta <= 0:
                    continue
            flow.transferred_bytes += delta
            self._charge(flow)

    def _charge(self, flow: Flow) -> None:
        frames = flow.total_frames()
        delta = frames - flow._charged_frames
        if delta <= 0:
            return
        flow._charged_frames = frames
        path = flow._path
        if path is None:  # pragma: no cover - rate>0 implies a path
            return
        nbytes = delta * flow.frame_wire_bytes
        for link, port in path.segments:
            link.fluid_charge(port, delta, nbytes)
        for entry in path.entries:
            entry.packets += delta
            entry.bytes += nbytes

    def _finish(self, flow: Flow, completed: bool) -> None:
        if completed and flow.size_bytes is not None:
            # Snap float residue so totals and frame counts are exact.
            flow.transferred_bytes = float(flow.size_bytes)
            self._charge(flow)
        flow.completed_at = self.sim.now
        self._set_rate(flow, 0.0)
        self.flows.remove(flow)
        self.finished.append(flow)
        self.flows_completed += 1
        trace = self.sim.trace
        if trace.wants("flow.complete"):
            trace.emit(self.sim.now, "flow.complete", flow.name,
                       bytes=flow.transferred_bytes, fct=flow.fct,
                       completed=completed)
        if completed and flow.on_complete is not None:
            flow.on_complete(flow)

    # ------------------------------------------------------------------
    # Path resolution

    def _resolve_all(self) -> None:
        for flow in self.flows:
            path = flow._path
            if path is not None and path.alive:
                continue
            had_path = path is not None
            flow._path = resolved = self._resolve_path(flow)
            if resolved is None:
                if had_path or flow._path_sig is None:
                    self.stall_events += 1
                    flow._path_sig = ()
                    if self.sim.trace.wants("flow.stall"):
                        self.sim.trace.emit(self.sim.now, "flow.stall",
                                            flow.name, src=flow.src.name,
                                            dst=str(flow.dst_ip))
                continue
            self.reresolutions += 1
            if self.tcp_enabled and flow.demand_bps is None:
                self._tcp_attach(flow, resolved)
            sig = resolved.hop_records
            if sig != flow._path_sig:
                if had_path or flow._path_sig == ():
                    flow.reroutes += 1
                flow._path_sig = sig
                trace = self.sim.trace
                if trace.wants("verify.flow"):
                    trace.emit(self.sim.now, "verify.flow", flow.name,
                               hops=sig, dst=flow._frame.dst.value,
                               src=flow.src.name,
                               compiled=resolved.compiled is not None)

    def _resolve_path(self, flow: Flow) -> ResolvedPath | None:
        """Pin ``flow`` to the hop list the live decision layer would
        forward its frames down: through the compiled-path cache when the
        flow compiles (sharing its invalidation hooks), else a volatile
        interpreted walk re-checked every recomputation. ``None`` when
        the destination is unreachable right now (unregistered PMAC,
        dead ingress, table miss, loop, or dead link on the walk)."""
        fm = self.fabric.fabric_manager
        src_record = fm.hosts_by_ip.get(flow.src.ip)
        dst_record = fm.hosts_by_ip.get(flow.dst_ip)
        if src_record is None or dst_record is None:
            return None
        frame = flow.representative_frame(src_record.pmac, dst_record.pmac)
        nic = flow.src.nic
        ingress_link = nic.link
        if ingress_link is None or ingress_link.capacity_bps(nic) <= 0:
            return None
        edge_port = ingress_link.other_end(nic)
        edge = edge_port.node
        if not isinstance(edge, FlowSwitch):
            return None
        compiled = None
        if self.path_cache is not None and hasattr(edge, "_path_table"):
            compiled = self.path_cache.resolve(edge, frame, edge_port.index)
        if compiled is not None:
            segments = ((ingress_link, nic),) + tuple(
                (hop.link, hop.out_port) for hop in compiled.hops)
            hop_records = tuple(
                (hop.switch_name, hop.entry_name, hop.in_index)
                for hop in compiled.hops)
            # Cut-through transit never queues: only the ingress host
            # link (a real Link queue in frame mode too) is a shared
            # capacity constraint. See ResolvedPath.constrained.
            return ResolvedPath(segments, compiled.entries, hop_records,
                                compiled,
                                constrained=(True,)
                                + (False,) * len(compiled.hops))
        hops, final_port = walk_decision_path(edge, edge_port.index, frame,
                                              require_live=True)
        if final_port is None:
            return None
        segments = ((ingress_link, nic),) + tuple(
            (hop.out_port.link, hop.out_port) for hop in hops)
        entries = tuple(hop.entry for hop in hops)
        hop_records = tuple((hop.node.name, hop.entry.name, hop.in_index)
                            for hop in hops)
        return ResolvedPath(segments, entries, hop_records, None)

    # ------------------------------------------------------------------
    # RTT-aware fluid TCP model (greedy flows only)

    def _tcp_attach(self, flow: Flow, path: ResolvedPath) -> None:
        """(Re)derive the flow's TCP timing from its resolved hop list.

        Called on every (re)resolution: a reroute updates the RTT, setup
        and tail terms to the new path while the window state (cwnd,
        ssthresh, growth clock) carries over — exactly what a live
        connection experiences when the fabric re-routes it. The reverse
        (ACK) direction is approximated over the same links, which is
        exact on symmetric topologies and a close bound elsewhere.
        """
        gross = flow._frame_gross
        fwd = rev = 0.0
        for link, _port in path.segments:
            fwd += gross * 8.0 / link.rate_bps + link.delay_s
            rev += _ACK_GROSS_BYTES * 8.0 / link.rate_bps + link.delay_s
        first = path.segments[0][0]
        config = self.fabric.config
        # One ARP resolution through the edge's proxy + fabric manager:
        # two switch software traversals, the control-network round
        # trip, one FM service slot, and the request/reply pair crossing
        # the host's access link.
        arp_s = (2.0 * config.agent_delay_s + 2.0 * config.control_delay_s
                 + config.fm_service_time_s
                 + 2.0 * (_ACK_GROSS_BYTES * 8.0 / first.rate_bps
                          + first.delay_s))
        tcp = flow.tcp
        if tcp is None:
            tcp = flow.tcp = FluidTcp(
                cwnd_bytes=float(INITIAL_WINDOW_SEGMENTS * DEFAULT_MSS),
                max_window_bytes=float(RECEIVE_WINDOW),
                mss_bytes=float(DEFAULT_MSS))
            # Handshake: both ends ARP-resolve their peer (sender before
            # the SYN, receiver before the SYN-ACK), then the SYN /
            # SYN-ACK control frames cross the path once each way.
            tcp.setup_s = 2.0 * arp_s + 2.0 * rev
            start = flow.started_at
            if start is None or start < self.sim.now:
                start = self.sim.now
            tcp.ready_at = start + tcp.setup_s
            tcp.last_tick = tcp.ready_at
        tcp.rtt_s = fwd + rev
        # Drain tail once the fluid transfer has clocked every byte onto
        # the first link: the last frame crosses the remaining hops
        # (store-and-forward), then the FIN exchange returns.
        tcp.tail_s = (fwd - gross * 8.0 / first.rate_bps) + rev

    def _advance_windows(self) -> None:
        """Grow every ready TCP flow's window by the RTTs elapsed since
        its last growth tick: slow-start doubling below ssthresh, one
        MSS per RTT (additive increase) above. Growth accrues lazily at
        recompute points; the per-RTT wakeups in :meth:`_arm_timers`
        only fire while a flow is window-bound with path headroom."""
        now = self.sim.now
        for flow in self.flows:
            tcp = flow.tcp
            if tcp is None or tcp.rtt_s <= 0.0 or now < tcp.ready_at:
                continue
            if not tcp.cwnd_limited:
                # Ack-clocked at its share (or capped): growth would be
                # cut right back next refill, so the clock idles.
                tcp.last_tick = now
                continue
            while (now - tcp.last_tick >= tcp.rtt_s - _EPS_S
                   and tcp.cwnd_bytes < tcp.max_window_bytes):
                tcp.last_tick += tcp.rtt_s
                if tcp.cwnd_bytes < tcp.ssthresh_bytes:
                    tcp.cwnd_bytes = min(tcp.cwnd_bytes * 2.0,
                                         tcp.max_window_bytes)
                else:
                    tcp.cwnd_bytes = min(tcp.cwnd_bytes + tcp.mss_bytes,
                                         tcp.max_window_bytes)
            if tcp.cwnd_bytes >= tcp.max_window_bytes:
                # Growth is capped: stop accumulating idle RTTs so a
                # later cut restarts the clock from the cut, not from
                # here.
                tcp.last_tick = now

    def _tcp_cut(self, flow: Flow, tcp: FluidTcp, gross_rate: float) -> None:
        """Bottleneck saturation: ack-clocking pins the window to the
        allocated share's bandwidth-delay product (floored at one MSS),
        and future growth is additive from there."""
        payload_bps = gross_rate / flow.gross_per_payload
        bdp = max(tcp.mss_bytes, payload_bps * tcp.rtt_s / 8.0)
        if bdp < tcp.cwnd_bytes:
            tcp.cwnd_bytes = bdp
            tcp.ssthresh_bytes = bdp
            tcp.cuts += 1
            self.tcp_cuts += 1
        tcp.last_tick = self.sim.now
        tcp.cwnd_limited = False

    # ------------------------------------------------------------------
    # Max-min fair rate allocation (progressive filling)

    def _refill(self) -> None:
        routed: list[Flow] = []
        for flow in self.flows:
            if flow._path is None:
                self._set_rate(flow, 0.0)
            else:
                routed.append(flow)
        if not routed:
            if self.hybrid:
                self._sync_hybrid_dirs({}, {})
            return
        now = self.sim.now
        remaining: dict[int, float] = {}
        dir_map: dict[int, tuple["Link", "Port"]] = {}
        #: Constrained directed links per flow — the water-filling set.
        segs_of: list[list[int]] = []
        #: Every directed link per flow — liveness + hybrid load push.
        all_of: list[list[int]] = []
        dead: set[int] = set()
        for flow in routed:
            seg_ids = []
            con_ids = []
            constrained = flow._path.constrained
            for si, (link, port) in enumerate(flow._path.segments):
                pid = id(port)
                if pid not in remaining:
                    # Capacity net of measured frame load in hybrid mode
                    # (floored well above zero there, so frame
                    # congestion is never mistaken for a dead carrier);
                    # identical to capacity_bps in pure fluid mode.
                    remaining[pid] = link.fluid_capacity_bps(port)
                    dir_map[pid] = (link, port)
                seg_ids.append(pid)
                if constrained[si]:
                    con_ids.append(pid)
            all_of.append(seg_ids)
            segs_of.append(con_ids)
        # A dead direction (capacity 0) means the pinned path went stale
        # without an invalidation reaching us (volatile fallback paths
        # have no carrier hooks): drop the path so the next recompute
        # re-resolves, and allocate nothing meanwhile.
        demands = [0.0] * len(routed)
        for i, flow in enumerate(routed):
            tcp = flow.tcp
            if flow.finished_transfer:
                # FIN drain: every byte is on the wire already, the flow
                # holds no bandwidth while it waits out its tail.
                demands[i] = 0.0
            elif tcp is not None:
                if now < tcp.ready_at - _EPS_S:
                    demands[i] = 0.0  # handshake still in flight
                else:
                    demands[i] = min(flow.gross_demand_bps,
                                     tcp.rate_bound_bps()
                                     * flow.gross_per_payload)
            else:
                demands[i] = flow.gross_demand_bps
        alive_flows: set[int] = set()
        for i, seg_ids in enumerate(all_of):
            if any(remaining[pid] <= 0.0 for pid in seg_ids):
                dead.add(i)
            else:
                alive_flows.add(i)
        rates = self._allocate_by_class(routed, demands, segs_of, remaining,
                                        alive_flows)
        loads: dict[int, float] = {}
        for i, flow in enumerate(routed):
            if i in dead:
                flow._path = None
                flow._path_sig = ()
                self._set_rate(flow, 0.0)
                continue
            tcp = flow.tcp
            if rates[i] < demands[i] - _EPS_BPS:
                self.bottleneck_events += 1
                if tcp is not None:
                    self._tcp_cut(flow, tcp, rates[i])
            elif tcp is not None and demands[i] > 0.0:
                # Window-bound at its ceiling: ramp per RTT, but only
                # while the path has spare capacity the growth could
                # actually claim.
                headroom = min(remaining[pid] for pid in segs_of[i])
                tcp.cwnd_limited = (tcp.cwnd_bytes < tcp.max_window_bytes
                                    and headroom > _MIN_RAMP_HEADROOM_BPS)
            self._set_rate(flow, rates[i] / flow.gross_per_payload)
            if self.hybrid and rates[i] > 0.0:
                for pid in all_of[i]:
                    loads[pid] = loads.get(pid, 0.0) + rates[i]
        if self.hybrid:
            self._sync_hybrid_dirs(dir_map, loads)

    def _allocate_by_class(self, routed: list[Flow], demands: list[float],
                           segs_of: list[list[int]],
                           remaining: dict[int, float],
                           alive_flows: set[int]) -> list[float]:
        """Strict-priority water-filling: fill each traffic class in
        descending order, each against the capacity the classes above it
        left behind (``remaining`` is mutated in place between rounds) —
        the fluid analogue of the frame path's strict-priority egress
        queues. With a single class present (the default: everything is
        class 0), this is exactly one max-min allocation, bit-identical
        to the pre-policy engine."""
        classes = {flow.tclass for flow in routed}
        if len(classes) <= 1:
            return max_min_allocate(demands, segs_of, remaining,
                                    active=alive_flows)
        rates = [0.0] * len(routed)
        for tclass in sorted(classes, reverse=True):
            active = {i for i in alive_flows
                      if routed[i].tclass == tclass}
            if not active:
                continue
            class_rates = max_min_allocate(demands, segs_of, remaining,
                                           active=active)
            for i in active:
                rates[i] = class_rates[i]
        return rates

    def _set_rate(self, flow: Flow, rate_bps: float) -> None:
        if flow.rate_bps != rate_bps:
            flow.rate_bps = rate_bps
            flow.rate_log.append((self.sim.now, rate_bps))

    # ------------------------------------------------------------------
    # Hybrid capacity sharing (fluid <-> frame coupling)

    def _sync_hybrid_dirs(self, dir_map: dict, loads: dict) -> None:
        """Push this round's fluid allocations onto the links and retire
        directions fluid no longer crosses (clearing their fluid *and*
        frame load so the links return to exact single-mode behaviour)."""
        for pid, (link, port) in self._fluid_dirs.items():
            if pid not in dir_map:
                link.set_fluid_load(port, 0.0)
                link.set_frame_load(port, 0.0)
                self._frame_seen.pop(pid, None)
                self._frame_ewma.pop(pid, None)
        now = self.sim.now
        for pid, (link, port) in dir_map.items():
            link.set_fluid_load(port, loads.get(pid, 0.0))
            if pid not in self._frame_seen:
                self._frame_seen[pid] = (link.frame_tx_bytes(port), now)
        self._fluid_dirs = dir_map

    def _epoch_tick(self) -> None:
        """Coarse utilization epoch: re-estimate the frame path's load
        on every direction fluid flows cross (EWMA over the per-epoch
        frame tx bytes) and trigger a recompute only when some
        direction's estimate moved materially — so a steady frame mix
        costs one cheap sampling pass per epoch, not a refill."""
        self.epoch_ticks += 1
        now = self.sim.now
        changed = False
        for pid, (link, port) in self._fluid_dirs.items():
            frame_bytes = link.frame_tx_bytes(port)
            prev = self._frame_seen.get(pid)
            self._frame_seen[pid] = (frame_bytes, now)
            if prev is None:
                inst = 0.0
            else:
                prev_bytes, prev_t = prev
                elapsed = now - prev_t
                inst = ((frame_bytes - prev_bytes) * 8.0 / elapsed
                        if elapsed > 0.0 else 0.0)
            old = self._frame_ewma.get(pid, 0.0)
            new = 0.5 * old + 0.5 * inst
            if new < 1.0:
                new = 0.0
            self._frame_ewma[pid] = new
            link.set_frame_load(port, new)
            if abs(new - old) > 0.005 * link.rate_bps:
                changed = True
        if changed and self.flows:
            self._kick()
        if self.flows:
            self._epoch_timer.start(self.epoch_s)

    # ------------------------------------------------------------------
    # Timers

    def _arm_timers(self) -> None:
        now = self.sim.now
        next_done = math.inf
        any_volatile = False
        any_stalled = False
        for flow in self.flows:
            if flow._path is None:
                any_stalled = True
            elif flow._path.compiled is None:
                any_volatile = True
            tcp = flow.tcp
            if tcp is not None:
                if tcp.close_at is not None:
                    # FIN drain: wake exactly when the tail completes.
                    next_done = min(next_done, tcp.close_at - now)
                    continue
                if now < tcp.ready_at - _EPS_S:
                    next_done = min(next_done, tcp.ready_at - now)
                    continue
                if tcp.cwnd_limited:
                    next_done = min(next_done,
                                    tcp.last_tick + tcp.rtt_s - now)
            if flow.size_bytes is not None and flow.rate_bps > 0:
                eta = (flow.size_bytes - flow.transferred_bytes) * 8 / flow.rate_bps
                next_done = min(next_done, eta)
        if math.isinf(next_done):
            self._completion_timer.stop()
        else:
            self._completion_timer.start(max(0.0, next_done))
        if any_stalled or any_volatile:
            self._retry_timer.start(self.retry_interval_s)
        else:
            self._retry_timer.stop()
        if self.hybrid:
            if self.flows:
                if not self._epoch_timer.armed:
                    self._epoch_timer.start(self.epoch_s)
            else:
                self._epoch_timer.stop()

    # ------------------------------------------------------------------
    # Observability

    def stats(self) -> dict[str, int]:
        """Counter snapshot (aggregatable via ``stats.aggregate_counters``)."""
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_active": len(self.flows),
            "flows_stalled": sum(1 for f in self.flows if f.stalled),
            "recomputes": self.recomputes,
            "reresolutions": self.reresolutions,
            "stall_events": self.stall_events,
            "bottleneck_events": self.bottleneck_events,
            "tcp_cuts": self.tcp_cuts,
            "epoch_ticks": self.epoch_ticks,
        }
