"""The fluid flow engine: max-min rates over compiled paths.

Where the frame path schedules one (composite) event per *frame*, the
:class:`FlowEngine` schedules one event per *rate change*: flows hold a
constant rate between recomputation points, and state only advances at

* flow arrival and completion (and explicit ``stop_flow``),
* every :class:`~repro.switching.path_cache.PathCache` invalidation that
  retires a compiled path — fault overrides (FaultUpdate/FaultClear),
  Disable/EnableLink, any carrier-state change of a traversed link — at
  which point affected flows re-resolve through the live decision layer
  and all rates are re-filled,
* a slow retry tick while any flow is stalled (no current path — e.g. a
  partition) or riding a volatile (uncompiled) path.

Rates come from *progressive filling* (max-min fairness): all unfrozen
flows rise together until a flow hits its demand or a directed link
saturates; flows crossing a saturated link freeze at their fair share;
repeat. Capacity accounting is in gross wire bits (headers plus
preamble/IFG) against :meth:`repro.net.link.Link.capacity_bps`, so a
fluid flow occupies exactly the bandwidth its frames would.

At every settlement the engine charges the same counters the frame path
charges — per-port tx/rx frames and bytes on every traversed link
(:meth:`~repro.net.link.Link.fluid_charge`, including the ingress
host→edge link) and packet/byte counts on every matched stage-2 flow
entry — so :mod:`repro.metrics.utilization` snapshots, ``by_layer``, and
``imbalance`` work unchanged in either mode.

Deliberate approximations (see ``docs/FLOWS.md``): no per-packet
latency, loss, or queue occupancy; during the instant between a
mid-interval link death and the recompute it triggers, in-transfer fluid
is charged like frames already on the wire.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.flows.flow import Flow, ResolvedPath
from repro.sim.events import PRIORITY_LOW
from repro.sim.process import Timer
from repro.switching.hop_walk import walk_decision_path
from repro.switching.switch import FlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.builder import PortlandFabric

#: Saturation slack for the progressive filling loop, in bits/s — six
#: orders below the 1 Gb/s default link rate, far above float noise.
_EPS_BPS = 1e-3

#: Default re-resolve period while flows are stalled or volatile.
DEFAULT_RETRY_INTERVAL_S = 0.020


class FlowEngine:
    """Fluid-mode executor for one fabric.

    Built by the topology builder when ``PortlandConfig.flow_mode`` is
    set (which also forces the compiled-path cache on — resolution and
    invalidation ride the same machinery as cut-through transit).
    """

    def __init__(self, fabric: "PortlandFabric",
                 retry_interval_s: float = DEFAULT_RETRY_INTERVAL_S) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.path_cache = fabric.path_cache
        self.retry_interval_s = retry_interval_s
        if self.path_cache is not None:
            self.path_cache.add_invalidation_listener(self._on_invalidation)
        #: Admitted, not-yet-completed flows (stalled ones included).
        self.flows: list[Flow] = []
        #: Completed (or stopped) flows, in completion order.
        self.finished: list[Flow] = []
        self._last_settle = self.sim.now
        self._recompute_pending = False
        self._completion_timer = Timer(self.sim, self._kick,
                                       priority=PRIORITY_LOW)
        self._retry_timer = Timer(self.sim, self._kick, priority=PRIORITY_LOW)
        # Counters (see stats()).
        self.flows_started = 0
        self.flows_completed = 0
        self.recomputes = 0
        self.reresolutions = 0
        self.stall_events = 0
        #: Times a routed flow was allocated less than its demand (its
        #: max-min share hit a saturated link). Zero over a whole run
        #: certifies the run was demand-limited — the regime in which
        #: flows do not couple through shared links, which is what the
        #: sharded kernel's per-shard fluid engines rely on (each shard
        #: computes rates from its own flows only; see docs/PERF.md).
        self.bottleneck_events = 0

    # ------------------------------------------------------------------
    # Flow admission / teardown

    def start_flow(self, src, dst_ip, **kwargs) -> Flow:
        """Admit a new :class:`Flow` now (kwargs go to the Flow
        constructor) and trigger a rate recomputation."""
        flow = Flow(src, dst_ip, **kwargs)
        flow.started_at = self.sim.now
        self.flows.append(flow)
        self.flows_started += 1
        trace = self.sim.trace
        if trace.wants("flow.start"):
            trace.emit(self.sim.now, "flow.start", flow.name,
                       src=flow.src.name, dst=str(flow.dst_ip),
                       demand_bps=flow.demand_bps, size=flow.size_bytes)
        self._kick()
        return flow

    def stop_flow(self, flow: Flow) -> None:
        """Terminate an open-ended flow now (bytes so far stay charged)."""
        if flow.completed_at is not None:
            return
        self._settle()
        self._finish(flow, completed=False)
        self._kick()

    # ------------------------------------------------------------------
    # Event scheduling

    def _kick(self) -> None:
        """Coalesce any number of same-instant triggers (arrivals,
        invalidation fan-outs, timer pops) into one recompute event,
        run at low priority so every state change at this timestamp is
        visible to the re-resolve."""
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.sim.schedule(0.0, self._recompute, priority=PRIORITY_LOW)

    def _on_invalidation(self, _source: str, _reason: str) -> None:
        if self.flows:
            self._kick()

    def _recompute(self) -> None:
        self._recompute_pending = False
        self.recomputes += 1
        self._settle()
        for flow in [f for f in self.flows if f.finished_transfer]:
            self._finish(flow, completed=True)
        self._resolve_all()
        self._refill()
        self._arm_timers()

    # ------------------------------------------------------------------
    # Settlement (advance fluid state to now)

    def settle_now(self) -> None:
        """Advance transfer totals and counters to the current simulated
        time without changing rates — call before reading byte counters
        or ``transferred_bytes`` at an arbitrary instant."""
        self._settle()

    def _settle(self) -> None:
        now = self.sim.now
        dt = now - self._last_settle
        self._last_settle = now
        if dt <= 0:
            return
        for flow in self.flows:
            if flow.rate_bps <= 0:
                continue
            delta = flow.rate_bps * dt / 8
            if flow.size_bytes is not None:
                delta = min(delta, flow.size_bytes - flow.transferred_bytes)
                if delta <= 0:
                    continue
            flow.transferred_bytes += delta
            self._charge(flow)

    def _charge(self, flow: Flow) -> None:
        frames = flow.total_frames()
        delta = frames - flow._charged_frames
        if delta <= 0:
            return
        flow._charged_frames = frames
        path = flow._path
        if path is None:  # pragma: no cover - rate>0 implies a path
            return
        nbytes = delta * flow.frame_wire_bytes
        for link, port in path.segments:
            link.fluid_charge(port, delta, nbytes)
        for entry in path.entries:
            entry.packets += delta
            entry.bytes += nbytes

    def _finish(self, flow: Flow, completed: bool) -> None:
        if completed and flow.size_bytes is not None:
            # Snap float residue so totals and frame counts are exact.
            flow.transferred_bytes = float(flow.size_bytes)
            self._charge(flow)
        flow.completed_at = self.sim.now
        self._set_rate(flow, 0.0)
        self.flows.remove(flow)
        self.finished.append(flow)
        self.flows_completed += 1
        trace = self.sim.trace
        if trace.wants("flow.complete"):
            trace.emit(self.sim.now, "flow.complete", flow.name,
                       bytes=flow.transferred_bytes, fct=flow.fct,
                       completed=completed)
        if completed and flow.on_complete is not None:
            flow.on_complete(flow)

    # ------------------------------------------------------------------
    # Path resolution

    def _resolve_all(self) -> None:
        for flow in self.flows:
            path = flow._path
            if path is not None and path.alive:
                continue
            had_path = path is not None
            flow._path = resolved = self._resolve_path(flow)
            if resolved is None:
                if had_path or flow._path_sig is None:
                    self.stall_events += 1
                    flow._path_sig = ()
                    if self.sim.trace.wants("flow.stall"):
                        self.sim.trace.emit(self.sim.now, "flow.stall",
                                            flow.name, src=flow.src.name,
                                            dst=str(flow.dst_ip))
                continue
            self.reresolutions += 1
            sig = resolved.hop_records
            if sig != flow._path_sig:
                if had_path or flow._path_sig == ():
                    flow.reroutes += 1
                flow._path_sig = sig
                trace = self.sim.trace
                if trace.wants("verify.flow"):
                    trace.emit(self.sim.now, "verify.flow", flow.name,
                               hops=sig, dst=flow._frame.dst.value,
                               src=flow.src.name,
                               compiled=resolved.compiled is not None)

    def _resolve_path(self, flow: Flow) -> ResolvedPath | None:
        """Pin ``flow`` to the hop list the live decision layer would
        forward its frames down: through the compiled-path cache when the
        flow compiles (sharing its invalidation hooks), else a volatile
        interpreted walk re-checked every recomputation. ``None`` when
        the destination is unreachable right now (unregistered PMAC,
        dead ingress, table miss, loop, or dead link on the walk)."""
        fm = self.fabric.fabric_manager
        src_record = fm.hosts_by_ip.get(flow.src.ip)
        dst_record = fm.hosts_by_ip.get(flow.dst_ip)
        if src_record is None or dst_record is None:
            return None
        frame = flow.representative_frame(src_record.pmac, dst_record.pmac)
        nic = flow.src.nic
        ingress_link = nic.link
        if ingress_link is None or ingress_link.capacity_bps(nic) <= 0:
            return None
        edge_port = ingress_link.other_end(nic)
        edge = edge_port.node
        if not isinstance(edge, FlowSwitch):
            return None
        compiled = None
        if self.path_cache is not None and hasattr(edge, "_path_table"):
            compiled = self.path_cache.resolve(edge, frame, edge_port.index)
        if compiled is not None:
            segments = ((ingress_link, nic),) + tuple(
                (hop.link, hop.out_port) for hop in compiled.hops)
            hop_records = tuple(
                (hop.switch_name, hop.entry_name, hop.in_index)
                for hop in compiled.hops)
            return ResolvedPath(segments, compiled.entries, hop_records,
                                compiled)
        hops, final_port = walk_decision_path(edge, edge_port.index, frame,
                                              require_live=True)
        if final_port is None:
            return None
        segments = ((ingress_link, nic),) + tuple(
            (hop.out_port.link, hop.out_port) for hop in hops)
        entries = tuple(hop.entry for hop in hops)
        hop_records = tuple((hop.node.name, hop.entry.name, hop.in_index)
                            for hop in hops)
        return ResolvedPath(segments, entries, hop_records, None)

    # ------------------------------------------------------------------
    # Max-min fair rate allocation (progressive filling)

    def _refill(self) -> None:
        routed: list[Flow] = []
        for flow in self.flows:
            if flow._path is None:
                self._set_rate(flow, 0.0)
            else:
                routed.append(flow)
        if not routed:
            return
        remaining: dict[int, float] = {}
        segs_of: list[list[int]] = []
        dead: set[int] = set()
        for flow in routed:
            seg_ids = []
            for link, port in flow._path.segments:
                pid = id(port)
                if pid not in remaining:
                    remaining[pid] = link.capacity_bps(port)
                seg_ids.append(pid)
            segs_of.append(seg_ids)
        # A dead direction (capacity 0) means the pinned path went stale
        # without an invalidation reaching us (volatile fallback paths
        # have no carrier hooks): drop the path so the next recompute
        # re-resolves, and allocate nothing meanwhile.
        rates = [0.0] * len(routed)
        demands = [flow.gross_demand_bps for flow in routed]
        unfrozen: set[int] = set()
        for i, seg_ids in enumerate(segs_of):
            if any(remaining[pid] <= 0.0 for pid in seg_ids):
                dead.add(i)
            else:
                unfrozen.add(i)
        for _round in range(len(routed) + 1):
            if not unfrozen:
                break
            members: dict[int, int] = {}
            for i in unfrozen:
                for pid in segs_of[i]:
                    members[pid] = members.get(pid, 0) + 1
            delta = min(demands[i] - rates[i] for i in unfrozen)
            for pid, count in members.items():
                share = remaining[pid] / count
                if share < delta:
                    delta = share
            if delta > 0 and not math.isinf(delta):
                for i in unfrozen:
                    rates[i] += delta
                for pid, count in members.items():
                    remaining[pid] -= delta * count
            frozen = {
                i for i in unfrozen
                if rates[i] >= demands[i] - _EPS_BPS
                or any(remaining[pid] <= _EPS_BPS for pid in segs_of[i])
            }
            if not frozen:
                break
            unfrozen -= frozen
        for i, flow in enumerate(routed):
            if i in dead:
                flow._path = None
                flow._path_sig = ()
                self._set_rate(flow, 0.0)
            else:
                if rates[i] < demands[i] - _EPS_BPS:
                    self.bottleneck_events += 1
                self._set_rate(flow, rates[i] / flow.gross_per_payload)

    def _set_rate(self, flow: Flow, rate_bps: float) -> None:
        if flow.rate_bps != rate_bps:
            flow.rate_bps = rate_bps
            flow.rate_log.append((self.sim.now, rate_bps))

    # ------------------------------------------------------------------
    # Timers

    def _arm_timers(self) -> None:
        next_done = math.inf
        any_volatile = False
        any_stalled = False
        for flow in self.flows:
            if flow._path is None:
                any_stalled = True
            elif flow._path.compiled is None:
                any_volatile = True
            if flow.size_bytes is not None and flow.rate_bps > 0:
                eta = (flow.size_bytes - flow.transferred_bytes) * 8 / flow.rate_bps
                next_done = min(next_done, eta)
        if math.isinf(next_done):
            self._completion_timer.stop()
        else:
            self._completion_timer.start(max(0.0, next_done))
        if any_stalled or any_volatile:
            self._retry_timer.start(self.retry_interval_s)
        else:
            self._retry_timer.stop()

    # ------------------------------------------------------------------
    # Observability

    def stats(self) -> dict[str, int]:
        """Counter snapshot (aggregatable via ``stats.aggregate_counters``)."""
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_active": len(self.flows),
            "flows_stalled": sum(1 for f in self.flows if f.stalled),
            "recomputes": self.recomputes,
            "reresolutions": self.reresolutions,
            "stall_events": self.stall_events,
            "bottleneck_events": self.bottleneck_events,
        }
