"""Flow-level (fluid) simulation over compiled paths.

A second execution layer next to the per-frame event kernel: a
:class:`~repro.flows.flow.Flow` is a (src, dst, demand, size) object
pinned to a hop list resolved through the live decision layer, and the
:class:`~repro.flows.engine.FlowEngine` advances all flows in rate-sized
chunks between a small number of recomputation events — orders of
magnitude fewer simulator events than per-frame forwarding, with the
same port/entry counters charged and the same invariants checkable.

See ``docs/FLOWS.md`` for the model, the fairness algorithm, and the
frame-vs-flow decision guide.
"""

from repro.flows.engine import FlowEngine
from repro.flows.flow import Flow, ResolvedPath

__all__ = ["Flow", "FlowEngine", "ResolvedPath"]
