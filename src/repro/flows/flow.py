"""Flow and resolved-path state for the fluid simulation engine.

A :class:`Flow` models one unidirectional transfer as a *rate* over a
pinned hop list instead of a stream of per-frame events. Everything the
engine needs to reproduce frame-path accounting is derived from a
*representative frame* — a real :class:`~repro.net.ethernet.EthernetFrame`
built from the flow's 5-tuple and the fabric manager's PMAC bindings —
so the ECMP hash (and therefore the path) is the exact one the first
packet of an equivalent frame-mode flow would take, and the per-frame
wire length matches what port counters would record.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_UDP, IPv4Packet
from repro.net.link import PER_FRAME_OVERHEAD_BYTES
from repro.net.packet import AppData
from repro.net.udp import UdpDatagram
from repro.policy import class_of_dscp

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import IPv4Address, MacAddress
    from repro.net.link import Link, Port
    from repro.switching.path_cache import CompiledPath

#: Tolerance (payload bytes) under which a finite flow counts as done —
#: absorbs the float round-trip between rate × Δt advancement and the
#: remaining/rate completion-deadline computation.
COMPLETION_SLACK_BYTES = 1e-3


class FluidTcp:
    """RTT-aware TCP rate-model state for one *greedy* fluid flow.

    Replaces the instant max-min jump with what a bulk TCP transfer over
    the same hop list actually does: nothing until the handshake
    completes (``ready_at`` = start + ARP resolution at both ends + the
    SYN/SYN-ACK round trip), then a window-clocked rate bounded by
    ``min(cwnd, rwnd) * 8 / rtt`` that ramps per RTT (slow-start
    doubling below ``ssthresh``, one MSS per RTT above) and is *cut* to
    the bandwidth-delay product of the allocated share when a bottleneck
    link saturates, and finally a ``tail_s`` drain (last frame crossing
    the remaining hops plus the FIN exchange) before the flow counts as
    complete. All times are derived from the resolved hop list's
    per-link serialization + propagation delays, so the model tracks the
    frame path across topologies and link speeds. See docs/FLOWS.md.
    """

    __slots__ = ("rtt_s", "setup_s", "tail_s", "ready_at", "close_at",
                 "cwnd_bytes", "ssthresh_bytes", "max_window_bytes",
                 "mss_bytes", "last_tick", "cwnd_limited", "cuts")

    def __init__(self, cwnd_bytes: float, max_window_bytes: float,
                 mss_bytes: float) -> None:
        self.rtt_s = 0.0
        self.setup_s = 0.0
        self.tail_s = 0.0
        #: Absolute time data may start flowing (handshake done).
        self.ready_at = math.inf
        #: Absolute time the FIN exchange completes (set once the fluid
        #: transfer has pushed every byte onto the first link).
        self.close_at: float | None = None
        self.cwnd_bytes = cwnd_bytes
        self.ssthresh_bytes = math.inf
        self.max_window_bytes = max_window_bytes
        self.mss_bytes = mss_bytes
        #: Window-growth clock: cwnd advances once per elapsed rtt_s.
        self.last_tick = math.inf
        #: Whether the last allocation was window-bound (ramping) rather
        #: than link-bound — only ramping flows need per-RTT wakeups.
        self.cwnd_limited = False
        #: Times the window was cut to the allocated share's BDP.
        self.cuts = 0

    @property
    def window_bytes(self) -> float:
        """Effective window: cwnd clamped by the receive window."""
        return min(self.cwnd_bytes, self.max_window_bytes)

    def rate_bound_bps(self) -> float:
        """Window-clocked payload-rate ceiling, in bits/s."""
        if self.rtt_s <= 0.0:
            return math.inf
        return self.window_bytes * 8.0 / self.rtt_s


class ResolvedPath:
    """A flow's pinned hop list, in charging-ready form.

    ``segments`` is the full directed-link sequence the fluid occupies —
    the ingress host→edge link first, then one (link, tx port) per
    compiled hop — so capacity constraints and counter charging cover
    exactly the links a frame-mode packet would cross. ``entries`` are
    the stage-2 flow entries to charge, ``hop_records`` the
    (switch, entry name, in port) triples for ``verify.flow`` trace
    records.

    A path backed by a :class:`CompiledPath` stays valid until the path
    cache invalidates it; a *volatile* path (interpreted-walk fallback,
    used when compilation is refused) carries no invalidation hooks and
    is re-resolved on every engine recomputation instead.

    ``constrained`` marks, per segment, whether the water-filling treats
    the directed link as a shared capacity constraint. The engine
    constrains exactly the links where the frame executor it mirrors
    actually *queues*: every segment of a volatile (interpreted) path,
    but only the ingress host link of a compiled path — cut-through
    composite events charge wire time on transit hops without mid-path
    queueing, so fluid transit there is likewise contention-free (this
    is what keeps fluid FCTs agreeing with the frame path's). All
    segments, constrained or not, still count for liveness detection,
    counter charging, and hybrid load push.
    """

    __slots__ = ("segments", "entries", "hop_records", "compiled",
                 "constrained")

    def __init__(self, segments, entries, hop_records,
                 compiled: "CompiledPath | None",
                 constrained: tuple[bool, ...] | None = None) -> None:
        self.segments: tuple[tuple["Link", "Port"], ...] = segments
        self.entries = entries
        self.hop_records = hop_records
        self.compiled = compiled
        if constrained is None:
            constrained = (True,) * len(segments)
        self.constrained = constrained

    @property
    def alive(self) -> bool:
        """Whether the pinned hops are still current.

        Volatile paths are never trusted across recomputations, so they
        report dead and force a re-resolve (which usually re-derives the
        identical hops)."""
        return self.compiled is not None and self.compiled.alive


class Flow:
    """One fluid flow: src → dst at up to ``demand_bps``.

    Rates and sizes are in *payload* (goodput) terms — what an
    application-level sender offers and a receiver measures. The engine
    internally converts to on-the-wire gross rates (framing headers plus
    the per-frame preamble/IFG overhead) for capacity math, and back to
    wire byte/frame totals for counter charging.

    ``demand_bps=None`` means greedy (take whatever max-min fair share
    the links allow, like a bulk TCP transfer); ``size_bytes=None``
    means open-ended (a CBR stream that runs until stopped).
    """

    def __init__(
        self,
        src,
        dst_ip: "IPv4Address",
        demand_bps: float | None = None,
        size_bytes: int | None = None,
        sport: int = 20000,
        dport: int = 20000,
        payload_bytes: int = 1000,
        dscp: int = 0,
        name: str | None = None,
        on_complete: Callable[["Flow"], None] | None = None,
    ) -> None:
        if demand_bps is not None and demand_bps <= 0:
            raise ValueError(f"demand_bps must be positive, got {demand_bps}")
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        if payload_bytes <= 0:
            raise ValueError(f"payload_bytes must be positive, got {payload_bytes}")
        self.src = src
        self.dst_ip = dst_ip
        self.demand_bps = demand_bps
        self.size_bytes = size_bytes
        self.sport = sport
        self.dport = dport
        self.payload_bytes = payload_bytes
        self.dscp = dscp
        #: Serving class (from DSCP): the engine water-fills higher
        #: classes first, mirroring the frame path's strict-priority
        #: egress queues.
        self.tclass = class_of_dscp(dscp)
        self.name = name or f"{src.name}->{dst_ip}:{dport}"
        self.on_complete = on_complete

        self.started_at: float | None = None
        self.completed_at: float | None = None
        #: Payload bytes delivered so far (fluid, fractional).
        self.transferred_bytes = 0.0
        #: Current allocated rate in payload bits/s (0 while stalled).
        self.rate_bps = 0.0
        #: (time, rate_bps) at every rate change — the flow-mode
        #: equivalent of a receiver's arrival timeline; convergence
        #: analyses read outages straight off the zero-rate spans.
        self.rate_log: list[tuple[float, float]] = []
        #: Times this flow's pinned hop list actually changed — a
        #: re-resolve that re-derived the identical path does not count.
        self.reroutes = 0

        # Engine-owned state.
        #: TCP rate-model state — attached by the engine on first path
        #: resolution when the model is enabled and the flow is greedy.
        self.tcp: FluidTcp | None = None
        self._path: ResolvedPath | None = None
        self._path_sig: tuple | None = None
        self._charged_frames = 0
        self._frame: EthernetFrame | None = None
        self._frame_macs: tuple[int, int] | None = None
        self._frame_wire = 0
        self._frame_gross = 0

    # ------------------------------------------------------------------
    # Representative frame

    def representative_frame(self, src_pmac: "MacAddress",
                             dst_pmac: "MacAddress") -> EthernetFrame:
        """The frame the engine resolves the path with — headers chosen
        so :func:`repro.switching.flow_table.decision_key` (and hence the
        ECMP member) equals a real frame of this flow after the ingress
        AMAC→PMAC rewrite. Rebuilt only when a PMAC binding moved (VM
        migration re-homes the flow)."""
        macs = (src_pmac.value, dst_pmac.value)
        if self._frame is None or self._frame_macs != macs:
            packet = IPv4Packet(self.src.ip, self.dst_ip, IPPROTO_UDP,
                                UdpDatagram(self.sport, self.dport,
                                            AppData(self.payload_bytes)),
                                dscp=self.dscp)
            self._frame = EthernetFrame(dst_pmac, src_pmac,
                                        ETHERTYPE_IPV4, packet,
                                        tclass=self.tclass)
            self._frame_macs = macs
            self._frame_wire = self._frame.wire_length()
            self._frame_gross = self._frame_wire + PER_FRAME_OVERHEAD_BYTES
        return self._frame

    @property
    def frame_wire_bytes(self) -> int:
        """Counter-visible bytes per frame (what ``tx_bytes`` records)."""
        return self._frame_wire

    # ------------------------------------------------------------------
    # Unit conversions (payload <-> gross wire occupancy)

    @property
    def gross_per_payload(self) -> float:
        """Wire occupancy per payload byte: headers + preamble/IFG."""
        return self._frame_gross / self.payload_bytes

    @property
    def gross_demand_bps(self) -> float:
        """Offered load in gross wire bits/s (inf for greedy flows)."""
        if self.demand_bps is None:
            return math.inf
        return self.demand_bps * self.gross_per_payload

    # ------------------------------------------------------------------
    # Progress

    @property
    def active(self) -> bool:
        """Started and not yet completed."""
        return self.started_at is not None and self.completed_at is None

    @property
    def stalled(self) -> bool:
        """Running but currently pathless (rate 0)."""
        return self.active and self._path is None

    @property
    def remaining_bytes(self) -> float | None:
        """Payload bytes left, or ``None`` for open-ended flows."""
        if self.size_bytes is None:
            return None
        return max(0.0, self.size_bytes - self.transferred_bytes)

    @property
    def finished_transfer(self) -> bool:
        """Whether a finite flow has delivered its full size."""
        return (self.size_bytes is not None
                and self.size_bytes - self.transferred_bytes
                <= COMPLETION_SLACK_BYTES)

    @property
    def fct(self) -> float | None:
        """Flow completion time, or ``None`` while running."""
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    def total_frames(self) -> int:
        """Frame count this flow's transfer corresponds to so far (the
        last frame of a finite transfer is charged in full, as the frame
        path would)."""
        if self.finished_transfer:
            return math.ceil(self.size_bytes / self.payload_bytes)
        return int(self.transferred_bytes / self.payload_bytes)

    def average_rate_bps(self, now: float) -> float:
        """Mean payload rate since start (uses FCT once completed)."""
        if self.started_at is None:
            return 0.0
        elapsed = (self.completed_at or now) - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.transferred_bytes * 8 / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.completed_at is not None
                 else "stalled" if self.stalled else "active"
                 if self.started_at is not None else "new")
        return f"<Flow {self.name} {state} rate={self.rate_bps:.0f}bps>"
