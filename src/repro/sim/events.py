"""Event objects and the pending-event queue for the discrete-event kernel.

The queue is a binary heap ordered by ``(time, priority, sequence)``.
``sequence`` is a monotonically increasing tie-breaker so that two events
scheduled for the same instant at the same priority always fire in the
order they were scheduled — this is what makes simulations reproducible.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped
when popped. This keeps cancellation O(1), which matters because protocol
timers (LDP keepalives, TCP retransmission timers) are cancelled and
re-armed far more often than they fire.

Lazy cancellation alone lets the heap grow without bound when timers are
re-armed faster than their old entries reach the top (a long TCP run
re-arms its retransmission timer on every ACK). The queue therefore
*compacts* itself — dropping cancelled entries and re-heapifying — once
cancelled entries outnumber live ones and the heap is big enough for the
O(n) sweep to pay for itself. Amortised cost stays O(1) per cancellation:
each compaction removes at least half the heap, paid for by the
cancellations that created those entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 100
#: Priority for events that must run before ordinary ones at the same time
#: (e.g. link-state changes should be visible to packets arriving "now").
PRIORITY_HIGH = 10
#: Priority for bookkeeping that should run after everything else.
PRIORITY_LOW = 1000


class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.push` (normally via
    :meth:`repro.sim.simulator.Simulator.schedule`) and should be treated
    as opaque handles whose only useful operations are :meth:`cancel` and
    the read-only properties below.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} prio={self.priority} {name} {state}>"


#: Below this heap size a compaction sweep costs more than it saves.
COMPACT_MIN_HEAP = 64


class EventQueue:
    """Min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self, compact_min_heap: int = COMPACT_MIN_HEAP) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._compact_min_heap = compact_min_heap

        # Lifetime counters (see ``stats``).
        self.pushes = 0
        self.pops = 0
        self.cancellations = 0
        self.compactions = 0
        self.compacted_entries = 0
        self.peak_heap = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap length, including not-yet-reclaimed cancelled entries."""
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Queue ``callback(*args)`` to run at simulated ``time``."""
        if time != time:  # NaN guard: NaN would corrupt heap ordering.
            raise SimulationError("event time is NaN")
        event = Event(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        self.pushes += 1
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            self.pops += 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_before(self, bound: float) -> Event | None:
        """Remove and return the earliest live event *strictly before*
        ``bound``, or ``None`` when the next live event is at or past it.

        The drain primitive of the sharded kernel's conservative window
        protocol: a shard repeatedly pops events below its granted
        horizon and leaves everything at/after it untouched for the next
        window. Uses ``peek_time`` first so cancelled entries at the top
        are reclaimed whether or not anything is returned.
        """
        next_time = self.peek_time()
        if next_time is None or next_time >= bound:
            return None
        return self.pop()

    def note_cancelled(self) -> None:
        """Inform the queue that one queued event was cancelled.

        Called by the simulator so ``len()`` stays accurate; the heap entry
        itself is discarded lazily on pop, or eagerly by compaction when
        cancelled entries come to dominate the heap.
        """
        self._live -= 1
        self.cancellations += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        heap = self._heap
        if len(heap) < self._compact_min_heap:
            return
        dead = len(heap) - self._live
        if dead <= self._live:
            return
        self._heap = [event for event in heap if not event._cancelled]
        heapq.heapify(self._heap)
        self.compactions += 1
        self.compacted_entries += len(heap) - len(self._heap)

    def stats(self) -> dict[str, int]:
        """Lifetime queue counters plus the current heap occupancy."""
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "cancellations": self.cancellations,
            "compactions": self.compactions,
            "compacted_entries": self.compacted_entries,
            "peak_heap": self.peak_heap,
            "heap_size": len(self._heap),
            "live": self._live,
        }

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
