"""Reusable timer abstractions built on the event queue.

Protocol code is dominated by two patterns: one-shot *watchdog* timers
that are constantly re-armed (TCP retransmission, LDP liveness) and
*periodic* tasks (LDM beacons, stats sampling). These classes wrap the
raw event API so protocol modules never juggle `Event` handles directly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import PRIORITY_NORMAL, Event
from repro.sim.simulator import Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` arms (or re-arms) the timer; ``stop`` disarms it. The
    callback fires at most once per arming.

    Re-arming is *slotted*: the timer tracks its logical ``_deadline``
    separately from the heap entry backing it. Pushing the deadline
    further out (the overwhelmingly common case — a TCP retransmission
    timer re-armed on every ACK, LDP liveness refreshed on every beacon)
    reuses the pending event: when that event fires before the current
    deadline it simply re-schedules itself at the deadline instead of
    running the callback. Only a re-arm to an *earlier* instant pays for
    a cancel + fresh push, so a busy flow contributes O(1) live heap
    entries instead of one cancelled entry per ACK.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._priority = priority
        self._event: Event | None = None
        self._deadline: float | None = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently pending."""
        return self._deadline is not None

    @property
    def expires_at(self) -> float | None:
        """Absolute expiry time, or ``None`` when disarmed."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer to fire after ``delay`` seconds, replacing any
        earlier arming."""
        deadline = self._sim.now + delay
        if self._event is not None:
            if self._event.time <= deadline:
                # Deadline stayed put or moved out: keep the heap entry;
                # _fire defers itself to the deadline when it pops early.
                self._deadline = deadline
                return
            self._sim.cancel(self._event)
        self._deadline = deadline
        self._event = self._sim.schedule(
            delay, self._fire, priority=self._priority
        )

    def stop(self) -> None:
        """Disarm the timer if armed."""
        self._deadline = None
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:
            return
        if deadline > self._sim.now:
            # The arming this event was pushed for has been superseded by
            # a later deadline: slide forward instead of firing.
            self._event = self._sim.schedule_at(
                deadline, self._fire, priority=self._priority
            )
            return
        self._deadline = None
        self._callback(*self._args)


class PeriodicTask:
    """Calls a function every ``period`` seconds until stopped.

    An optional per-tick ``jitter`` fraction desynchronizes beacons that
    would otherwise fire in lock-step across thousands of switches (the
    same reason real protocols jitter their hello timers).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        jitter: float = 0.0,
        rng_name: str = "periodic",
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._args = args
        self._jitter = jitter
        self._rng = sim.random.stream(rng_name)
        self._priority = priority
        self._event: Event | None = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the task is currently scheduled to keep firing."""
        return self._running

    def start(self, first_delay: float | None = None) -> None:
        """Begin firing; first tick after ``first_delay`` (default: one
        jittered period)."""
        if self._running:
            return
        self._running = True
        delay = self._next_delay() if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._tick, priority=self._priority)

    def stop(self) -> None:
        """Stop firing. The task may be started again later."""
        self._running = False
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _next_delay(self) -> float:
        if self._jitter == 0.0:
            return self.period
        # Uniform in [period*(1-jitter), period*(1+jitter)].
        spread = self.period * self._jitter
        return self.period + self._rng.uniform(-spread, spread)

    def _tick(self) -> None:
        if not self._running:
            return
        self._event = self._sim.schedule(
            self._next_delay(), self._tick, priority=self._priority
        )
        self._callback(*self._args)
