"""Measurement primitives: counters, time series, rate meters, CDFs.

These are deliberately simulator-agnostic (they take explicit timestamps)
so the same classes serve unit tests, metrics collectors subscribed to
the trace bus, and the benchmark harnesses.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass


class Counter:
    """A named monotonic counter with an optional byte dimension."""

    __slots__ = ("name", "count", "bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.bytes = 0

    def add(self, n: int = 1, nbytes: int = 0) -> None:
        """Increment by ``n`` occurrences and ``nbytes`` bytes."""
        self.count += n
        self.bytes += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}: {self.count} events, {self.bytes} bytes)"


class TimeSeries:
    """Append-only ``(time, value)`` samples with window queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r}: sample at {time} before last {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Samples with ``start <= time < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def last_value(self, default: float = 0.0) -> float:
        """Most recent value, or ``default`` when empty."""
        return self.values[-1] if self.values else default

    def integrate(self) -> float:
        """Trapezoidal integral of value over time."""
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += dt * (self.values[i] + self.values[i - 1]) / 2.0
        return total


class RateMeter:
    """Buckets event occurrences into fixed-width bins → events/sec series.

    Used for throughput timelines (Figs. 11–13): record a delivery of
    ``nbytes`` at time ``t``; read back goodput per bin.
    """

    def __init__(self, bin_width: float, name: str = "") -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self.name = name
        self._bins: dict[int, int] = {}
        self._byte_bins: dict[int, int] = {}

    def record(self, time: float, nbytes: int = 0) -> None:
        """Count one event (and optionally its payload size) at ``time``."""
        idx = int(time / self.bin_width)
        self._bins[idx] = self._bins.get(idx, 0) + 1
        if nbytes:
            self._byte_bins[idx] = self._byte_bins.get(idx, 0) + nbytes

    def series(
        self, start: float = 0.0, end: float | None = None, bytes_per_sec: bool = False
    ) -> list[tuple[float, float]]:
        """``(bin_start_time, rate)`` for every bin in [start, end).

        Empty bins are emitted as zeros so gaps (outages) are visible.
        """
        bins = self._byte_bins if bytes_per_sec else self._bins
        if not bins and end is None:
            return []
        last = max(bins) if bins else 0
        first = int(start / self.bin_width)
        stop = last + 1 if end is None else int(math.ceil(end / self.bin_width))
        return [
            (idx * self.bin_width, bins.get(idx, 0) / self.bin_width)
            for idx in range(first, stop)
        ]

    def total(self) -> int:
        """Total events recorded."""
        return sum(self._bins.values())

    def total_bytes(self) -> int:
        """Total bytes recorded."""
        return sum(self._byte_bins.values())


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float


def _is_sorted(samples: list[float]) -> bool:
    return all(a <= b for a, b in zip(samples, samples[1:]))


def percentile(samples: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of a sample list.

    Callers that already hold sorted data (``summarize`` sorts once and
    queries three percentiles) pay only an O(n) sortedness check;
    unsorted input is sorted into a copy rather than silently producing
    a wrong answer, which is what interpolating over an unsorted list
    used to do.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if len(samples) == 1:
        return samples[0]
    sorted_samples = samples if _is_sorted(samples) else sorted(samples)
    rank = fraction * (len(sorted_samples) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    low_value = sorted_samples[lo]
    high_value = sorted_samples[hi]
    if lo == hi or low_value == high_value:
        return low_value
    weight = rank - lo
    # a + w*(b-a) is guaranteed to stay within [a, b] for w in [0, 1].
    return low_value + weight * (high_value - low_value)


def summarize(samples: list[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over ``samples``."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    ordered = sorted(samples)
    # Clamp the mean into [min, max]: float summation can otherwise land
    # one ULP outside the sample range.
    mean = min(max(math.fsum(ordered) / len(ordered), ordered[0]), ordered[-1])
    return SummaryStats(
        count=len(ordered),
        mean=mean,
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
    )


def aggregate_counters(counter_dicts) -> dict[str, int]:
    """Key-wise sum of an iterable of ``{name: count}`` dicts.

    Rolls per-switch decision-cache snapshots (or per-simulator event
    queue stats) into one fabric-wide view for benchmarks and reports.
    """
    total: dict[str, int] = {}
    for counters in counter_dicts:
        for key, value in counters.items():
            total[key] = total.get(key, 0) + value
    return total


def cdf_points(samples: list[float]) -> list[tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_fraction)`` points."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
