"""Discrete-event simulation kernel.

Exports the simulator, timer helpers, tracing, and statistics used by
every other subsystem in the library.
"""

from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, Event, EventQueue
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RandomStreams, child_seed
from repro.sim.simulator import Simulator
from repro.sim.stats import (
    Counter,
    RateMeter,
    SummaryStats,
    TimeSeries,
    aggregate_counters,
    cdf_points,
    percentile,
    summarize,
)
from repro.sim.trace import TraceBus, TraceCollector, TraceRecord

__all__ = [
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Counter",
    "Event",
    "EventQueue",
    "PeriodicTask",
    "RandomStreams",
    "RateMeter",
    "Simulator",
    "SummaryStats",
    "TimeSeries",
    "Timer",
    "TraceBus",
    "TraceCollector",
    "TraceRecord",
    "aggregate_counters",
    "cdf_points",
    "child_seed",
    "percentile",
    "summarize",
]
