"""Deterministic random-number streams for simulation components.

A single master seed drives the whole simulation, but handing the *same*
``random.Random`` to every component makes results fragile: adding one
extra random draw in an unrelated module perturbs every subsequent draw
everywhere. Instead, each named component gets its own stream derived
from ``(master_seed, component_name)`` so streams are independent and
stable under code evolution.
"""

from __future__ import annotations

import hashlib
import random


def child_seed(root_seed: int, shard_id: int | str) -> int:
    """Derive a stable per-shard seed from a root seed.

    Used by the sharded parallel kernel (:mod:`repro.sim.parallel`) so
    every shard — and a single-process run standing in for all of them —
    derives identical per-pod randomness from ``(root_seed, shard_id)``
    alone. The derivation is pure (sha256 over the rendered pair), so it
    is stable across processes, platforms, and hash randomization.
    """
    digest = hashlib.sha256(
        f"{int(root_seed)}/shard/{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of per-component deterministic ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(master_seed, name)`` pair always yields an identical
        sequence, regardless of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}/{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per experiment repetition."""
        digest = hashlib.sha256(f"{self.master_seed}/spawn/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def child(self, shard_id: int | str) -> "RandomStreams":
        """A per-shard child factory seeded via :func:`child_seed`."""
        return RandomStreams(child_seed(self.master_seed, shard_id))
