"""Lightweight publish/subscribe trace bus for simulation events.

Components emit trace records (packet drops, link failures, flow-table
changes, control messages) under a *category* string; metrics collectors
and tests subscribe to the categories they care about. When nobody is
subscribed to a category, emitting costs one dict lookup — cheap enough
to leave tracing statements in hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

TraceHandler = Callable[["TraceRecord"], None]


@dataclass(frozen=True)
class TraceRecord:
    """One trace emission.

    Attributes:
        time: Simulated time of the emission.
        category: Dot-separated category, e.g. ``"link.drop"``.
        source: Name of the emitting component (node/link name).
        detail: Free-form payload fields.
    """

    time: float
    category: str
    source: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceBus:
    """Routes :class:`TraceRecord` objects to subscribed handlers.

    Subscriptions match exact categories or prefixes: a handler subscribed
    to ``"link"`` receives ``"link.drop"`` and ``"link.fail"`` records. The
    wildcard category ``"*"`` receives everything.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, list[TraceHandler]] = {}
        self._any_handlers: list[TraceHandler] = []
        # Top-level prefix -> number of live handlers under it. Reference
        # counted so that unsubscribing the last handler really turns the
        # prefix off again (and emit goes back to its one-lookup fast path).
        self._prefix_counts: dict[str, int] = {}

    def subscribe(self, category: str, handler: TraceHandler) -> None:
        """Register ``handler`` for ``category`` (or ``"*"`` for all)."""
        if category == "*":
            self._any_handlers.append(handler)
            return
        self._handlers.setdefault(category, []).append(handler)
        prefix = category.split(".", 1)[0]
        self._prefix_counts[prefix] = self._prefix_counts.get(prefix, 0) + 1

    def unsubscribe(self, category: str, handler: TraceHandler) -> None:
        """Remove a previously registered handler. Missing ones are ignored."""
        if category == "*":
            if handler in self._any_handlers:
                self._any_handlers.remove(handler)
            return
        handlers = self._handlers.get(category, [])
        if handler not in handlers:
            return
        handlers.remove(handler)
        if not handlers:
            del self._handlers[category]
        prefix = category.split(".", 1)[0]
        remaining = self._prefix_counts.get(prefix, 0) - 1
        if remaining > 0:
            self._prefix_counts[prefix] = remaining
        else:
            self._prefix_counts.pop(prefix, None)

    def wants(self, category: str) -> bool:
        """Whether emitting ``category`` would reach any handler.

        Lets callers skip building expensive detail dicts when tracing is
        off: ``if bus.wants("link.drop"): bus.emit(...)``.
        """
        if self._any_handlers:
            return True
        return category.split(".", 1)[0] in self._prefix_counts

    def emit(
        self,
        time: float,
        category: str,
        source: str,
        **detail: Any,
    ) -> None:
        """Publish a record to all handlers matching ``category``."""
        if not self._any_handlers and category.split(".", 1)[0] not in self._prefix_counts:
            return
        record = TraceRecord(time=time, category=category, source=source, detail=detail)
        for handler in self._any_handlers:
            handler(record)
        # Deliver to the exact category and every dotted prefix of it.
        part = category
        while True:
            for handler in self._handlers.get(part, ()):
                handler(record)
            cut = part.rfind(".")
            if cut < 0:
                break
            part = part[:cut]


class TraceCollector:
    """Convenience subscriber that accumulates records into a list."""

    def __init__(self, bus: TraceBus, category: str) -> None:
        self.records: list[TraceRecord] = []
        self._bus = bus
        self._category = category
        self._handler: TraceHandler | None = self.records.append
        bus.subscribe(category, self._handler)

    def close(self) -> None:
        """Detach from the bus (keeps the collected records). Idempotent."""
        if self._handler is not None:
            self._bus.unsubscribe(self._category, self._handler)
            self._handler = None

    def __len__(self) -> int:
        return len(self.records)

    def times(self) -> list[float]:
        """Emission times, in order."""
        return [record.time for record in self.records]
