"""Sharded parallel simulation kernel: per-pod event loops with a
conservative lookahead barrier.

PortLand's fat tree decomposes into pods that interact only through the
core, and — once the compiled-path cache is warm — data-plane flows
interact only through counters, not through each other's queues (cut-
through launches never contend; see ``docs/PERF.md``). The sharded
kernel exploits both facts:

* **Replicated fabric, partitioned workload.** Every shard builds the
  *same* fabric from the same seed and converges it identically (LDP,
  registration, FM state — all control behaviour is a deterministic
  function of the seed). What is partitioned is the workload: each
  source pod's flows are owned by exactly one shard, which creates and
  runs their senders; shard 0 owns no pods and stands for the fabric
  manager's control plane (its replica executes *only* control events,
  which is what lets the merge subtract control-plane counter charges
  that every replica re-executed).

* **Conservative windows.** A coordinator repeatedly grants every shard
  the same execution horizon ``min(next pending event across shards,
  next control op) + window`` (``window >= core-link lookahead``) and
  shards drain events strictly below it (:meth:`Simulator.run_before`).
  Control operations (fault injections) travel inside the grant as
  timestamped :class:`~repro.portland.ops.FaultOp` messages and are
  applied by every shard at the same virtual instant — the barrier is
  what guarantees no shard has run past an op before receiving it. The
  final window runs inclusively to ``until``, so the union of windows
  executes exactly the event set a single ``run(until)`` would.

* **Merge.** Deliveries, drops, and per-link byte totals partition by
  flow ownership, so the merged data plane is the disjoint union of the
  shards'. Control-plane charges are identical in every replica, so the
  merged counter for a link is ``delta_fm + sum(delta_s - delta_fm)``
  over workload shards. Trace records are merged by subtracting the FM
  shard's record multiset from each workload shard (removing the
  replicated control records) and sorting by timestamp.

The determinism contract — a sharded run is oracle-equivalent to the
single-process kernel on the same seed (same delivery tuples, drops,
per-link byte totals, zero invariant violations) — is enforced by
``tests/verify/test_parallel_equivalence.py`` and re-checked by
``benchmarks/bench_parallel.py`` on every benchmark run.
"""

from __future__ import annotations

import multiprocessing
import threading
import time as _time
import traceback
from collections import Counter, deque
from dataclasses import dataclass, replace
from queue import SimpleQueue

from repro.errors import SimulationError
from repro.portland.ops import FaultOp, apply_fault_op
from repro.sim.events import PRIORITY_HIGH
from repro.sim.stats import aggregate_counters

#: Core-link propagation delay — the physically guaranteed lookahead
#: (default ``LinkParams.delay_s``).
DEFAULT_LOOKAHEAD_S = 1e-6

#: Default grant width. Replicas only exchange *control* messages, so
#: windows may batch far beyond the physical lookahead; the window is a
#: synchronization-overhead knob, bounded below by the lookahead.
DEFAULT_WINDOW_S = 0.025


# ----------------------------------------------------------------------
# Run specification


@dataclass(frozen=True)
class ParallelRunSpec:
    """Everything a shard needs to rebuild its replica — plain data,
    picklable, and the complete determinism input."""

    k: int = 4
    hosts_per_edge: int = 1
    seed: int = 1
    #: Measurement window in simulated seconds (after convergence).
    duration_s: float = 0.5
    #: Workload spec (see :mod:`repro.workloads.partition`).
    workload: "PodWorkloadSpec | None" = None
    #: Control schedule; ``FaultOp.time`` is relative to window start.
    faults: tuple[FaultOp, ...] = ()
    path_cache_entries: int = 4096
    decision_cache_entries: int = 4096
    flow_mode: bool = False
    carrier_detect: bool = True
    lookahead_s: float = DEFAULT_LOOKAHEAD_S
    window_s: float = DEFAULT_WINDOW_S
    #: Attach the runtime invariant oracle to every shard.
    check_invariants: bool = True
    #: Trace categories each shard records for the merged trace
    #: (empty = no trace collection; hop records can be millions).
    trace_categories: tuple[str, ...] = ()

    def resolved_workload(self) -> "PodWorkloadSpec":
        from repro.workloads.partition import PodWorkloadSpec

        return self.workload if self.workload is not None else PodWorkloadSpec()


@dataclass(frozen=True)
class ShardPlan:
    """Pod ownership per shard. Shard 0 is the FM/control shard and owns
    no pods; pods are dealt round-robin over shards ``1..workers``."""

    assignments: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    @staticmethod
    def for_pods(num_pods: int, workers: int) -> "ShardPlan":
        workers = max(1, min(workers, num_pods))
        owned: list[list[int]] = [[] for _ in range(workers)]
        for pod in range(num_pods):
            owned[pod % workers].append(pod)
        return ShardPlan(((),) + tuple(tuple(pods) for pods in owned))


@dataclass(frozen=True)
class _Grant:
    """Coordinator -> shard: run to ``horizon`` (exclusive, or inclusive
    when ``final``), applying ``ops`` (absolute times) first."""

    horizon: float
    final: bool
    ops: tuple[FaultOp, ...]


@dataclass
class ShardResult:
    """Plain-data outcome of one shard, picklable across processes."""

    shard_id: int
    owned_pods: tuple[int, ...]
    start_time: float
    end_time: float
    rounds: int
    events: int
    arrivals: dict
    sent: dict
    fcts: dict
    link_bytes: dict
    link_frames: dict
    link_drops: dict
    queue_stats: dict
    path_stats: dict
    flow_stats: dict
    path_signature: str
    violations: list
    trace: list


@dataclass
class ParallelResult:
    """Merged view of a run — identical shape for sharded and
    single-process kernels, so equivalence is a field-wise diff."""

    workers: int
    backend: str
    start_time: float
    end_time: float
    wall_s: float
    rounds: int
    events_total: int
    arrivals: dict
    sent: dict
    fcts: dict
    link_bytes: dict
    link_frames: dict
    link_drops: dict
    violations: list
    trace: list
    queue_stats: dict
    path_stats: dict
    flow_stats: dict
    path_signatures: tuple = ()
    shard_events: tuple = ()

    @property
    def delivered(self) -> int:
        return sum(len(log) for log in self.arrivals.values())

    @property
    def drops_total(self) -> int:
        return sum(self.link_drops.values())


# ----------------------------------------------------------------------
# Shard harness (runs inside the worker thread/process)


def _plain(value):
    """Best-effort primitive rendering for cross-process payloads."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_plain(v) for v in value)
    return str(value)


class _ShardHarness:
    """One replica: build, converge, own a pod subset, run windows."""

    def __init__(self, spec: ParallelRunSpec, shard_id: int,
                 owned_pods: tuple[int, ...]) -> None:
        self.spec = spec
        self.shard_id = shard_id
        self.owned_pods = tuple(owned_pods)
        self.rounds = 0
        self._trace_records: list[dict] = []

    def setup(self) -> None:
        from repro.portland.config import PortlandConfig
        from repro.topology.builder import LinkParams, build_portland_fabric
        from repro.topology.fattree import build_fat_tree
        from repro.verify.oracle import InvariantOracle
        from repro.workloads.partition import PodWorkload

        spec = self.spec
        self.sim = sim = _new_simulator(spec.seed)
        tree = build_fat_tree(spec.k, hosts_per_edge=spec.hosts_per_edge)
        config = PortlandConfig(
            path_cache_entries=spec.path_cache_entries,
            decision_cache_entries=spec.decision_cache_entries,
            flow_mode=spec.flow_mode)
        self.fabric = fabric = build_portland_fabric(
            sim, tree=tree, config=config,
            link_params=LinkParams(carrier_detect=spec.carrier_detect))
        fabric.start()
        fabric.run_until_located()
        fabric.announce_hosts()
        fabric.run_until_registered()
        self.start_time = sim.now
        self.oracle = (InvariantOracle(fabric)
                       if spec.check_invariants else None)
        for category in spec.trace_categories:
            sim.trace.subscribe(category, self._record_trace)
        self.workload = PodWorkload(fabric, spec.resolved_workload(),
                                    self.owned_pods)
        self._baseline = _usage_snapshot(fabric.links)
        self._baseline_drops = _drops_snapshot(fabric.links)
        self._events0 = sim.events_executed
        self.workload.start()

    def _record_trace(self, record) -> None:
        self._trace_records.append({
            "time": record.time,
            "category": record.category,
            "source": record.source,
            "detail": {k: _plain(v) for k, v in record.detail.items()},
        })

    def apply_grant_ops(self, ops: tuple[FaultOp, ...]) -> None:
        """Schedule rebased control ops; the conservative barrier
        guarantees the shard clock has not passed any of them."""
        sim = self.sim
        for op in ops:
            sim.schedule_at(max(op.time, sim.now), apply_fault_op,
                            self.fabric, op, priority=PRIORITY_HIGH)

    def run_windows(self, recv, send) -> None:
        """The shard side of the horizon protocol."""
        sim = self.sim
        while True:
            send(("clock", self.shard_id, sim.now, sim.next_event_time()))
            grant = recv()
            self.apply_grant_ops(grant.ops)
            self.rounds += 1
            if grant.final:
                sim.run(until=grant.horizon)
                return
            sim.run_before(grant.horizon)

    def finish(self) -> ShardResult:
        fabric = self.fabric
        sim = self.sim
        if fabric.flow_engine is not None:
            fabric.flow_engine.settle_now()
        violations = []
        if self.oracle is not None:
            self.oracle.check_now()
            violations = [
                (v.kind, v.where, v.time,
                 {k: _plain(val) for k, val in v.detail.items()})
                for v in self.oracle.violations
            ]
            self.oracle.close()
        usage = _usage_snapshot(fabric.links)
        drops = _drops_snapshot(fabric.links)
        link_bytes = {}
        link_frames = {}
        link_drops = {}
        for key, (nbytes, nframes) in usage.items():
            base_bytes, base_frames = self._baseline[key]
            link_bytes[key] = nbytes - base_bytes
            link_frames[key] = nframes - base_frames
            link_drops[key] = drops[key] - self._baseline_drops[key]
        return ShardResult(
            shard_id=self.shard_id,
            owned_pods=self.owned_pods,
            start_time=self.start_time,
            end_time=sim.now,
            rounds=self.rounds,
            events=sim.events_executed - self._events0,
            arrivals=self.workload.arrivals(),
            sent=self.workload.sent(),
            fcts=self.workload.fluid_completions(),
            link_bytes=link_bytes,
            link_frames=link_frames,
            link_drops=link_drops,
            queue_stats=sim.queue_stats(),
            path_stats=fabric.path_cache_stats(),
            flow_stats=fabric.flow_engine_stats(),
            path_signature=(fabric.path_cache.table_signature()
                            if fabric.path_cache is not None else ""),
            violations=violations,
            trace=self._trace_records,
        )


def _new_simulator(seed: int):
    from repro.sim.simulator import Simulator

    return Simulator(seed=seed)


def _usage_snapshot(links):
    from repro.metrics.utilization import snapshot

    return snapshot(links)


def _drops_snapshot(links):
    return {key: link.a.counters.drops + link.b.counters.drops
            for key, link in links.items()}


# ----------------------------------------------------------------------
# Worker entry points and channels


def _worker_body(spec: ParallelRunSpec, plan: ShardPlan, shard_id: int,
                 recv, send) -> None:
    try:
        harness = _ShardHarness(spec, shard_id, plan.assignments[shard_id])
        harness.setup()
        harness.run_windows(recv, send)
        send(("result", shard_id, harness.finish()))
    except BaseException:
        send(("error", shard_id, traceback.format_exc()))


def _process_worker_main(spec, plan, shard_id, conn) -> None:
    """Module-level so the 'spawn' start method can pickle it."""
    _worker_body(spec, plan, shard_id, conn.recv, conn.send)
    conn.close()


class _ThreadChannel:
    def __init__(self, spec, plan, shard_id) -> None:
        self._to_worker: SimpleQueue = SimpleQueue()
        self._to_coord: SimpleQueue = SimpleQueue()
        self.thread = threading.Thread(
            target=_worker_body,
            args=(spec, plan, shard_id, self._to_worker.get,
                  self._to_coord.put),
            name=f"shard-{shard_id}", daemon=True)
        self.thread.start()

    def send(self, obj) -> None:
        self._to_worker.put(obj)

    def recv(self):
        return self._to_coord.get()

    def close(self) -> None:
        self.thread.join(timeout=30.0)


class _ProcessChannel:
    def __init__(self, ctx, spec, plan, shard_id) -> None:
        self._conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_process_worker_main, args=(spec, plan, shard_id, child),
            name=f"shard-{shard_id}", daemon=True)
        self.process.start()
        child.close()

    def send(self, obj) -> None:
        self._conn.send(obj)

    def recv(self):
        return self._conn.recv()

    def close(self) -> None:
        self.process.join(timeout=30.0)
        if self.process.is_alive():  # pragma: no cover - hang backstop
            self.process.terminate()


def _spawn_channels(backend: str, spec: ParallelRunSpec, plan: ShardPlan):
    if backend == "thread":
        return [_ThreadChannel(spec, plan, sid)
                for sid in range(plan.num_shards)]
    if backend == "process":
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        return [_ProcessChannel(ctx, spec, plan, sid)
                for sid in range(plan.num_shards)]
    raise ValueError(f"unknown backend {backend!r} (thread|process)")


# ----------------------------------------------------------------------
# Coordinator


def run_sharded(spec: ParallelRunSpec, workers: int = 2,
                backend: str = "thread") -> ParallelResult:
    """Run ``spec`` sharded over ``workers`` workload shards (+ the FM
    shard) and merge the results. ``backend`` is ``"thread"`` (protocol
    smoke on 1-core CI) or ``"process"`` (real parallelism)."""
    plan = ShardPlan.for_pods(spec.k, workers)
    channels = _spawn_channels(backend, spec, plan)
    rounds = 0
    try:
        reports = [_checked(ch.recv(), "clock") for ch in channels]
        # Wall clock starts once every replica has converged: replica
        # build/convergence is per-process setup (it overlaps given
        # enough cores), not part of the windowed protocol under test.
        wall0 = _time.perf_counter()
        starts = {r[2] for r in reports}
        if len(starts) != 1:
            raise SimulationError(
                f"replicas converged at different times: {sorted(starts)} — "
                "the fabric build is not deterministic")
        start = starts.pop()
        until = start + spec.duration_s
        window = max(spec.window_s, spec.lookahead_s)
        pending = deque(sorted(
            (replace(op, time=start + op.time) for op in spec.faults),
            key=lambda op: (op.time, op.kind, op.a, op.b)))
        while True:
            nexts = [r[3] for r in reports if r[3] is not None]
            candidates = [min(nexts)] if nexts else []
            if pending:
                candidates.append(pending[0].time)
            base = min(candidates) if candidates else None
            if base is None or base >= until:
                ops = tuple(op for op in pending if op.time <= until)
                for ch in channels:
                    ch.send(_Grant(until, True, ops))
                rounds += 1
                break
            horizon = min(until, base + window)
            ops = []
            while pending and pending[0].time < horizon:
                ops.append(pending.popleft())
            grant = _Grant(horizon, False, tuple(ops))
            for ch in channels:
                ch.send(grant)
            rounds += 1
            reports = [_checked(ch.recv(), "clock") for ch in channels]
        results = [_checked(ch.recv(), "result")[2] for ch in channels]
    finally:
        for ch in channels:
            ch.close()
    wall_s = _time.perf_counter() - wall0
    return merge_results(results, wall_s=wall_s, backend=backend,
                         workers=workers, rounds=rounds)


def _checked(message, expected_tag):
    if message[0] == "error":
        raise SimulationError(
            f"shard {message[1]} failed:\n{message[2]}")
    if message[0] != expected_tag:  # pragma: no cover - protocol bug
        raise SimulationError(f"expected {expected_tag}, got {message[0]}")
    return message


def run_single(spec: ParallelRunSpec) -> ParallelResult:
    """The single-process reference kernel on the identical spec: one
    replica owning every pod, control ops pre-scheduled, one
    ``run(until)``. The oracle the determinism gate compares against."""
    from repro.topology.fattree import build_fat_tree

    num_pods = build_fat_tree(spec.k,
                              hosts_per_edge=spec.hosts_per_edge).num_pods
    harness = _ShardHarness(spec, 0, tuple(range(num_pods)))
    harness.setup()
    # Matches run_sharded: the wall clock covers the measurement window
    # and result extraction, not fabric build/convergence.
    wall0 = _time.perf_counter()
    start = harness.start_time
    harness.apply_grant_ops(tuple(
        replace(op, time=start + op.time) for op in spec.faults))
    harness.sim.run(until=start + spec.duration_s)
    harness.rounds = 1
    result = harness.finish()
    wall_s = _time.perf_counter() - wall0
    return merge_results([result], wall_s=wall_s, backend="single",
                         workers=1, rounds=1)


# ----------------------------------------------------------------------
# Merge and equivalence


def _trace_key(record: dict) -> tuple:
    return (record["time"], record["category"], record["source"],
            tuple(sorted(record["detail"].items())))


def merge_results(results: list[ShardResult], wall_s: float, backend: str,
                  workers: int, rounds: int) -> ParallelResult:
    """Merge shard results into one fabric-wide view.

    ``results[0]`` is the FM/control shard (or the sole result of a
    single-process run): its counter deltas are pure control-plane
    charges, identical in every replica, so the merged per-link total is
    ``fm + sum(shard - fm)``. Deliveries/sends/drops partition by flow
    ownership and merge disjointly.
    """
    fm = results[0]
    rest = results[1:]
    arrivals: dict = {}
    sent: dict = {}
    fcts: dict = {}
    for result in results:
        for mapping, merged in ((result.arrivals, arrivals),
                                (result.sent, sent), (result.fcts, fcts)):
            for key, value in mapping.items():
                if key in merged:
                    raise SimulationError(
                        f"flow {key} produced by two shards — ownership "
                        "is not disjoint")
                merged[key] = value
    link_bytes = {}
    link_frames = {}
    link_drops = {}
    for key in fm.link_bytes:
        link_bytes[key] = fm.link_bytes[key] + sum(
            r.link_bytes[key] - fm.link_bytes[key] for r in rest)
        link_frames[key] = fm.link_frames[key] + sum(
            r.link_frames[key] - fm.link_frames[key] for r in rest)
        link_drops[key] = fm.link_drops[key] + sum(
            r.link_drops[key] - fm.link_drops[key] for r in rest)
    # Trace: control records are replicated in every shard; subtract the
    # FM shard's multiset from each workload shard, keep the rest.
    fm_keys = Counter(_trace_key(r) for r in fm.trace)
    merged_trace = list(fm.trace)
    for result in rest:
        budget = Counter(fm_keys)
        for record in result.trace:
            key = _trace_key(record)
            if budget[key] > 0:
                budget[key] -= 1
                continue
            merged_trace.append(record)
    merged_trace.sort(key=lambda r: (r["time"], r["category"], r["source"]))
    seen = set()
    violations = []
    for result in results:
        for violation in result.violations:
            key = repr(violation)
            if key not in seen:
                seen.add(key)
                violations.append(violation)
    return ParallelResult(
        workers=workers,
        backend=backend,
        start_time=fm.start_time,
        end_time=fm.end_time,
        wall_s=wall_s,
        rounds=rounds,
        events_total=sum(r.events for r in results),
        arrivals=arrivals,
        sent=sent,
        fcts=fcts,
        link_bytes=link_bytes,
        link_frames=link_frames,
        link_drops=link_drops,
        violations=violations,
        trace=merged_trace,
        queue_stats=aggregate_counters(r.queue_stats for r in results),
        path_stats=aggregate_counters(r.path_stats for r in results),
        flow_stats=aggregate_counters(r.flow_stats for r in results),
        path_signatures=tuple(r.path_signature for r in results),
        shard_events=tuple(r.events for r in results),
    )


def diff_results(reference: ParallelResult, candidate: ParallelResult,
                 exact_times: bool = True,
                 fct_tolerance_s: float = 1e-9) -> list[str]:
    """Field-wise equivalence check; an empty list means oracle-equivalent.

    ``exact_times=True`` demands identical ``(time, seq)`` delivery
    tuples (fault-free runs, where every workload frame is cut-through
    and flows never share a queue). With mid-run faults, reconvergence
    frames travel hop-by-hop and *can* queue behind another shard's
    frames in the reference but not in a replica, so timing is not
    preserved — pass ``exact_times=False`` to compare delivered seq sets
    instead (byte totals and drops stay exact either way).
    """
    diffs: list[str] = []
    if set(reference.sent) != set(candidate.sent):
        diffs.append(
            f"flow sets differ: {len(reference.sent)} vs "
            f"{len(candidate.sent)} flows")
        return diffs
    for flow_id, count in reference.sent.items():
        if candidate.sent[flow_id] != count:
            diffs.append(f"sent[{flow_id}]: {count} vs "
                         f"{candidate.sent[flow_id]}")
    for flow_id, log in reference.arrivals.items():
        other = candidate.arrivals.get(flow_id, ())
        if exact_times:
            if tuple(log) != tuple(other):
                diffs.append(
                    f"arrivals[{flow_id}]: {len(log)} deliveries vs "
                    f"{len(other)} (or times differ)")
        else:
            if {seq for _t, seq in log} != {seq for _t, seq in other}:
                diffs.append(f"arrival seq set differs for {flow_id}")
    for name, ref_map, cand_map in (
            ("bytes", reference.link_bytes, candidate.link_bytes),
            ("frames", reference.link_frames, candidate.link_frames),
            ("drops", reference.link_drops, candidate.link_drops)):
        for key, value in ref_map.items():
            if cand_map.get(key) != value:
                diffs.append(
                    f"link {name} {key}: {value} vs {cand_map.get(key)}")
    for flow_id, fct in reference.fcts.items():
        other = candidate.fcts.get(flow_id)
        if other is None or abs(other - fct) > fct_tolerance_s:
            diffs.append(f"fct[{flow_id}]: {fct} vs {other}")
    if len(reference.violations) != len(candidate.violations):
        diffs.append(
            f"violations: {len(reference.violations)} vs "
            f"{len(candidate.violations)}")
    return diffs
