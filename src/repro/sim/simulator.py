"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock, the pending-event queue, the
trace bus, and the deterministic random streams. Every other object in
this library (links, hosts, switches, the fabric manager) holds a
reference to one simulator and schedules its behaviour through it.

Typical driver loop::

    sim = Simulator(seed=1)
    ...build topology, hosts, agents...
    sim.run(until=10.0)          # simulated seconds
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_NORMAL, Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceBus


class Simulator:
    """Discrete-event simulation kernel with a virtual clock in seconds."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.trace = TraceBus()
        self.random = RandomStreams(seed)
        #: Count of events executed so far (for progress reporting/limits).
        self.events_executed = 0
        #: Optional hard cap on executed events; ``run`` raises when hit.
        self.max_events: int | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Event | None) -> None:
        """Cancel a pending event. ``None`` and already-cancelled are no-ops."""
        if event is None or event.cancelled:
            return
        event.cancel()
        self._queue.note_cancelled()

    def run(self, until: float | None = None) -> float:
        """Execute events until the queue drains or the clock passes ``until``.

        Returns the final simulated time. When ``until`` is given, the clock
        is advanced to exactly ``until`` even if the queue drained earlier,
        so back-to-back ``run`` calls compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None  # peek_time() said non-empty
                self._now = event.time
                self.events_executed += 1
                if self.max_events is not None and self.events_executed > self.max_events:
                    raise SimulationError(f"exceeded max_events={self.max_events}")
                event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_before(self, bound: float) -> float:
        """Execute every event *strictly before* ``bound``, then advance
        the clock to exactly ``bound``.

        The windowed-execution primitive of the sharded parallel kernel
        (:mod:`repro.sim.parallel`): a shard granted a horizon drains its
        queue up to — but excluding — the horizon, so back-to-back
        ``run_before`` calls partition the timeline into half-open
        windows ``[now, bound)`` and a final inclusive :meth:`run`
        executes exactly the same event set a single ``run(until)``
        would have.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        if bound < self._now:
            raise SimulationError(
                f"cannot run_before({bound}) with clock at {self._now}")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                event = self._queue.pop_before(bound)
                if event is None:
                    break
                self._now = event.time
                self.events_executed += 1
                if self.max_events is not None and self.events_executed > self.max_events:
                    raise SimulationError(f"exceeded max_events={self.max_events}")
                event.callback(*event.args)
        finally:
            self._running = False
        if self._now < bound:
            self._now = bound
        return self._now

    def next_event_time(self) -> float | None:
        """Absolute time of the earliest pending event (``None`` if idle).

        The lookahead input of the conservative barrier: peers may not
        be granted a horizon past ``min(next_event_time)`` + window.
        """
        return self._queue.peek_time()

    def step(self) -> bool:
        """Execute exactly one event. Returns ``False`` if the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self.events_executed += 1
        event.callback(*event.args)
        return True

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of live events waiting in the queue."""
        return len(self._queue)

    def queue_stats(self) -> dict[str, int]:
        """Event-queue counters (pushes, pops, cancellations, compactions,
        heap occupancy) — the kernel half of the fast-path telemetry."""
        return self._queue.stats()
