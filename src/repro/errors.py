"""Exception hierarchy for the PortLand reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, or running a simulator
    that has already been stopped.
    """


class CodecError(ReproError):
    """A packet or message could not be encoded or decoded."""


class AddressError(ReproError):
    """A MAC/IP/PMAC address was malformed or out of range."""


class TopologyError(ReproError):
    """A topology specification is invalid or could not be wired."""


class LinkError(ReproError):
    """A link operation failed (e.g. attaching to an occupied port)."""


class SwitchError(ReproError):
    """A switch pipeline or flow-table operation failed."""


class HostError(ReproError):
    """A host-stack operation failed (socket misuse, bad bind, ...)."""


class FabricManagerError(ReproError):
    """The fabric manager received an invalid request or message."""


class ProtocolError(ReproError):
    """A control protocol (LDP, fabric-manager protocol) violation."""
